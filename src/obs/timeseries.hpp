// TimeSeriesRegistry: the time dimension for Flecc's metrics.
// MetricsRegistry and the per-agent CounterSets are cumulative
// snapshots — fine for end-of-run tables, useless for "is the
// retransmit rate spiking *right now* on this view", which is exactly
// what metric-driven policy adaptation (ROADMAP item 3) and live
// dashboards (item 5) need. This registry samples a set of collector
// callbacks on a configurable interval into a bounded ring of windowed
// snapshots, deriving per-window deltas and per-second rates for
// counters and windowed quantiles for RunningStats (from log2-bucket
// deltas, so no samples are retained).
//
// Series are dimensional: a SeriesId is a name plus a sorted label set
// ({view="7"}, {flight="204"}), not a dot-concatenated flat name, so
// exporters can render proper Prometheus labels and consumers can
// aggregate across a dimension.
//
// Determinism discipline: sample() is driven from simulated time (a
// daemon event under SimFabric), collectors only *read* protocol
// state, and nothing here feeds back into the protocol — so a run
// with the sampler attached is bit-identical to one without. The ring
// is mutex-guarded only because a TelemetryServer thread may render a
// window while the sim thread publishes the next one.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace flecc::obs {

/// One dimension of a series ("view" = "12"). Keys should be legal
/// Prometheus label keys; values are free-form (escaped on export).
struct TsLabel {
  std::string key;
  std::string value;
  friend bool operator<(const TsLabel& a, const TsLabel& b) {
    return a.key < b.key || (a.key == b.key && a.value < b.value);
  }
  friend bool operator==(const TsLabel& a, const TsLabel& b) {
    return a.key == b.key && a.value == b.value;
  }
};
using TsLabels = std::vector<TsLabel>;

/// Identity of a series: dotted name + sorted labels.
struct SeriesId {
  std::string name;
  TsLabels labels;
  friend bool operator<(const SeriesId& a, const SeriesId& b) {
    return a.name < b.name || (a.name == b.name && a.labels < b.labels);
  }
  friend bool operator==(const SeriesId& a, const SeriesId& b) {
    return a.name == b.name && a.labels == b.labels;
  }
};

enum class SeriesKind : std::uint8_t { kCounter, kGauge };

/// One series' reading within a closed window.
struct SeriesSample {
  SeriesKind kind = SeriesKind::kGauge;
  double value = 0.0;  ///< cumulative (counter) or instantaneous (gauge)
  double delta = 0.0;  ///< counter increase within the window (0 for gauges)
  double rate = 0.0;   ///< delta per second of window span (0 for gauges)
};

/// Windowed distribution summary for a RunningStat-backed series,
/// derived from log2-bucket deltas between consecutive samples — the
/// quantiles describe only the observations that landed in this
/// window.
struct StatWindow {
  std::uint64_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// One closed sampling window.
struct TelemetryWindow {
  std::uint64_t index = 0;  ///< 0-based; == windows closed before this one
  sim::Time start = 0;      ///< exclusive (previous sample point)
  sim::Time end = 0;        ///< inclusive (this sample point)
  std::map<SeriesId, SeriesSample> series;
  std::map<SeriesId, StatWindow> stats;
};

/// The mutable view handed to collectors during sample(): collectors
/// report current cumulative/instantaneous values and the registry
/// derives deltas/rates against its previous sample.
class SampleFrame {
 public:
  /// Report a cumulative counter. If the value ever decreases (agent
  /// restart, view migration), the delta clamps to the new value — a
  /// counter reset, not a negative rate.
  void counter(std::string_view name, double cumulative, TsLabels labels = {});
  /// Report an instantaneous gauge.
  void gauge(std::string_view name, double value, TsLabels labels = {});
  /// Report a RunningStat for windowed quantiles.
  void stat(std::string_view name, const sim::RunningStat& s,
            TsLabels labels = {});
  /// Same for a SampleSet (folded into log2 buckets at sampling time).
  void stat(std::string_view name, const sim::SampleSet& s,
            TsLabels labels = {});
  /// Fold a whole CounterSet in as counters, names prefixed
  /// ("dm." + name). Every entry runs through prom::split_family, so
  /// dotted category families ("flow.shed.Pull") arrive as labeled
  /// series rather than one series per category value; `labels` is
  /// appended to every resulting series.
  void counters(const sim::CounterSet& set, std::string_view prefix,
                const TsLabels& labels = {});

 private:
  friend class TimeSeriesRegistry;
  /// Cumulative RunningStat reading (count/sum/buckets) a collector
  /// reported; the registry diffs consecutive readings per window.
  struct StatReading {
    std::uint64_t count = 0;
    double sum = 0.0;
    std::uint64_t buckets[sim::RunningStat::kBuckets] = {};
  };
  std::map<SeriesId, SeriesSample> series_;
  std::map<SeriesId, StatReading> stats_;
};

/// Samples registered collectors into a bounded ring of
/// TelemetryWindows. Collectors run on the sampling thread (the sim
/// thread, in every current use); snapshot accessors are safe to call
/// from other threads.
class TimeSeriesRegistry {
 public:
  /// Sampling cadence and retention knobs.
  struct Config {
    /// Sampling cadence in simulated time. Each sample() call closes
    /// one window; callers are expected to honor this interval when
    /// scheduling (the registry itself just timestamps what it is
    /// given).
    sim::Duration interval = sim::msec(250);
    /// Windows retained in the ring; older windows fall off.
    std::size_t capacity = 64;
  };

  // Two constructors rather than `Config cfg = {}`: a default argument
  // would need Config's member initializers before the enclosing class
  // is complete.
  TimeSeriesRegistry() { cfg_ = Config(); }
  explicit TimeSeriesRegistry(const Config& cfg) : cfg_(cfg) {}

  using Collector = std::function<void(SampleFrame&)>;
  /// Register a collector; the returned token deregisters it again.
  /// Collectors typically capture the component they read, so anything
  /// shorter-lived than the registry (a testbed handing a shared hub
  /// from run to run) MUST remove_collector() before it dies.
  std::size_t add_collector(Collector c);
  void remove_collector(std::size_t token);
  [[nodiscard]] std::size_t collector_count() const {
    return collectors_.size();
  }

  /// Run every collector, close the window ending at `now`, derive
  /// deltas/rates/windowed quantiles against the previous sample, and
  /// publish the window into the ring.
  void sample(sim::Time now);

  [[nodiscard]] const Config& config() const noexcept { return cfg_; }
  [[nodiscard]] std::uint64_t windows_closed() const;
  /// Copy of the most recent window (nullopt before the first sample).
  [[nodiscard]] std::optional<TelemetryWindow> latest() const;
  /// Copies of up to the `n` most recent windows, oldest first.
  [[nodiscard]] std::vector<TelemetryWindow> recent(std::size_t n) const;
  /// Distinct series (counter/gauge + stat) in the latest window.
  [[nodiscard]] std::size_t series_count() const;

 private:
  Config cfg_;
  std::vector<std::pair<std::size_t, Collector>> collectors_;
  std::size_t next_token_ = 0;
  // Previous cumulative readings for delta derivation (sampler thread
  // only — no lock needed).
  std::map<SeriesId, double> prev_counter_;
  std::map<SeriesId, SampleFrame::StatReading> prev_stat_;
  sim::Time last_sample_ = 0;

  mutable std::mutex mu_;  // guards ring_ and closed_
  std::deque<TelemetryWindow> ring_;
  std::uint64_t closed_ = 0;
};

}  // namespace flecc::obs
