// Offline trace analysis: turns a (time-sorted) obs::TraceEvent stream
// into per-op latency distributions, retransmit/duplicate/drop tallies,
// and a textual message-sequence view for one span. Used by
// tools/flecc_trace and by the benches' --trace summaries.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace flecc::obs {

/// Aggregate view of one trace (see summarize()).
struct TraceSummary {
  /// op_started → op_completed latency in microseconds, keyed by op
  /// label ("pull", "push", "acquire", ...).
  std::map<std::string, sim::SampleSet> op_latency_us;
  /// Ops started but never completed (crashed views, truncated trace).
  /// Ops interrupted by a directory restart are counted separately in
  /// ops_unfinished_recovery, not here.
  std::uint64_t ops_unfinished = 0;
  /// Ops open when a directory recovery began: the cache manager
  /// re-issued them under the new generation (a fresh span), so they
  /// are expected casualties of the restart, not truncation.
  std::uint64_t ops_unfinished_recovery = 0;

  std::uint64_t ops_enqueued = 0;
  std::uint64_t ops_started = 0;
  std::uint64_t ops_completed = 0;
  std::uint64_t msgs_sent = 0;
  std::uint64_t msgs_received = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t dedup_hits = 0;
  std::uint64_t drops = 0;
  /// Drops by reason name ("loss", "partition", "no_route", "unbound").
  std::map<std::string, std::uint64_t> drops_by_reason;
  std::uint64_t heartbeat_misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t merges = 0;
  /// Trigger firings by label ("push", "pull", "validity").
  std::map<std::string, std::uint64_t> trigger_fires;
  std::uint64_t mode_switches = 0;
  /// Monitor findings embedded in the trace (kInvariantViolation /
  /// kMonitorWarning events emitted by obs::monitor::InvariantMonitor).
  std::uint64_t invariant_violations = 0;
  std::uint64_t monitor_warnings = 0;

  /// Directory crash-recovery facts (kRecoveryBegin / kRecoveryEnd /
  /// kMsgFenced; see OBSERVABILITY.md "Recovery metrics").
  std::uint64_t recovery_epochs = 0;      ///< kRecoveryBegin events
  std::uint64_t recovery_unresolved = 0;  ///< begins without an end
  std::uint64_t fenced_messages = 0;      ///< stale-generation rejections
  std::uint64_t wal_replayed = 0;         ///< checkpoint entries replayed
  std::uint64_t reannouncements = 0;      ///< RebuildReply re-announcements
  /// Per-epoch rebuild duration (recovery_begin → recovery_end), µs.
  sim::SampleSet rebuild_duration_us;

  /// Overload facts (kLoadShed / kBreakerTransition / kRetryExhausted).
  std::uint64_t load_sheds = 0;           ///< admission-control refusals
  std::uint64_t breaker_transitions = 0;  ///< CM breaker state changes
  std::uint64_t retries_exhausted = 0;    ///< ops abandoned terminally

  /// View-migration facts (kMigrateBegin / kMigrateDone /
  /// kMigrateAborted / kJournalReplay; see OBSERVABILITY.md "Migration
  /// & journaling counter families").
  std::uint64_t migration_epochs = 0;      ///< kMigrateBegin events
  std::uint64_t migrations_aborted = 0;    ///< closed by kMigrateAborted
  std::uint64_t migration_unresolved = 0;  ///< begins with no outcome
  std::uint64_t journal_replays = 0;       ///< CM journal-driven restarts
  std::uint64_t journal_replayed = 0;      ///< journal records re-issued
  /// Per-epoch settle duration (migrate_begin → done/aborted), µs.
  sim::SampleSet migration_duration_us;

  /// SLO alert lifecycle (kAlertRaised / kAlertCleared emitted by
  /// obs::AlertEngine; `label` carries the rule name).
  std::uint64_t alerts_raised = 0;
  std::uint64_t alerts_cleared = 0;

  sim::Time first_at = 0;
  sim::Time last_at = 0;
  std::uint64_t total_events = 0;
};

/// Name for a DropReason code (TraceEvent::a of kMsgDropped).
[[nodiscard]] const char* drop_reason_name(std::uint64_t code);

/// One pass over the events (any order; latency pairing is by span).
[[nodiscard]] TraceSummary summarize(const std::vector<TraceEvent>& events);

/// Fold a summary into a MetricsRegistry ("trace." counters plus
/// "op.<label>.latency_us" distributions).
void export_metrics(const TraceSummary& s, MetricsRegistry& reg);

/// Render the per-op latency table (count/mean/p50/p99/max, µs) plus
/// the reliability tallies — flecc_trace's default report.
[[nodiscard]] std::string render_report(const TraceSummary& s);

/// Spans that appear in the trace, most events first — helps pick a
/// span for render_sequence(). Each entry: (span, op label, events).
struct SpanInfo {
  std::uint64_t span = 0;
  std::string label;
  std::size_t events = 0;
};
[[nodiscard]] std::vector<SpanInfo> list_spans(
    const std::vector<TraceEvent>& events);

/// Textual message-sequence view of one operation: every event carrying
/// `span`, time-ordered, one line per event with role/agent/kind/label.
[[nodiscard]] std::string render_sequence(const std::vector<TraceEvent>& events,
                                          std::uint64_t span);

}  // namespace flecc::obs
