// MetricsRegistry: a named bag of counters, streaming stats, exact
// sample sets and latency histograms, built on sim/stats.hpp. The
// protocol FSMs keep their lightweight per-instance sim::CounterSet;
// this registry is the aggregation point where a bench or the trace
// analyzer rolls per-agent numbers (and trace-derived latencies) into
// one exportable table. Metric names are dotted paths
// ("op.pull.latency_us", "net.dropped.loss"); OBSERVABILITY.md lists
// the canonical names.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "sim/stats.hpp"

namespace flecc::obs {

/// Named counters + distributions with CSV/plaintext export. Not
/// thread-safe; aggregate after the run.
class MetricsRegistry {
 public:
  // ---- counters -------------------------------------------------------
  void inc(const std::string& name, std::uint64_t by = 1) {
    counters_.inc(name, by);
  }
  [[nodiscard]] std::uint64_t counter(const std::string& name) const {
    return counters_.get(name);
  }
  [[nodiscard]] const sim::CounterSet& counters() const noexcept {
    return counters_;
  }
  /// Fold a protocol agent's counter set in, optionally prefixed
  /// ("cm.7." + name).
  void absorb(const sim::CounterSet& src, const std::string& prefix = "");

  // ---- distributions --------------------------------------------------
  /// Streaming moments for `name` (created on first use).
  sim::RunningStat& stat(const std::string& name) { return stats_[name]; }
  /// Exact-quantile samples for `name` (created on first use).
  sim::SampleSet& samples(const std::string& name) { return samples_[name]; }
  /// Histogram for `name`; [lo, hi) with `bins` linear bins on first
  /// call, later calls return the existing histogram unchanged.
  sim::Histogram& histogram(const std::string& name, double lo, double hi,
                            std::size_t bins);
  /// Record one observation into stat, samples, and (if it exists)
  /// histogram of the same name.
  void observe(const std::string& name, double value);

  [[nodiscard]] const std::map<std::string, sim::RunningStat>& stats()
      const noexcept {
    return stats_;
  }
  [[nodiscard]] const std::map<std::string, sim::SampleSet>& sample_sets()
      const noexcept {
    return samples_;
  }
  [[nodiscard]] const sim::Histogram* find_histogram(
      const std::string& name) const;

  // ---- export ---------------------------------------------------------
  /// CSV rows: `kind,name,field,value` (kind in counter|stat|quantile).
  /// Quantile rows are p50/p90/p99/p999 (rows are append-only: new
  /// quantiles go after the existing ones).
  [[nodiscard]] std::string to_csv() const;
  bool write_csv(const std::string& path) const;
  /// Human-readable summary (counters, then distributions with
  /// count/mean/p50/p99/max).
  [[nodiscard]] std::string to_string() const;
  /// Prometheus text exposition format (text/plain; version 0.0.4),
  /// built on obs/prom.hpp: every family gets `# HELP`/`# TYPE`
  /// lines, names get a "flecc_" prefix with illegal characters
  /// mapped to underscores, and dotted category families
  /// ("flow.shed.<type>", "msg.dropped.<reason>", ...) render as one
  /// labeled series per dimension instead of name-mangled series.
  /// Counters export as `counter` (`_total` suffix), sample sets as
  /// `summary` (p50/p90/p99/p99.9 quantiles plus _sum/_count), stats
  /// without a sample set as `gauge` (mean), linear histograms as
  /// cumulative `histogram` buckets. Output passes prom::validate();
  /// see OBSERVABILITY.md.
  [[nodiscard]] std::string to_prometheus() const;
  bool write_prometheus(const std::string& path) const;

 private:
  sim::CounterSet counters_;
  std::map<std::string, sim::RunningStat> stats_;
  std::map<std::string, sim::SampleSet> samples_;
  std::map<std::string, sim::Histogram> hists_;
};

}  // namespace flecc::obs
