// TelemetryHub: the one object a bench or testbed wires up to get the
// whole live-telemetry pipeline — a TimeSeriesRegistry sampled on
// simulated time, an AlertEngine evaluated on every closed window, and
// thread-safe renderers for the three scrape surfaces:
//
//   /metrics  Prometheus text exposition (validator-clean, HELP/TYPE,
//             labels, cumulative `_total` counters plus windowed
//             `_per_sec` rate gauges and window-scoped summaries)
//   /varz     JSON of the most recent windows, raw series included
//   /healthz  one-look rollup: status ok|degraded|alerting, the
//             `health.*` gauge family, recovery state, active alerts
//
// The hub lives in obs (no sockets here): net::TelemetryServer serves
// the rendered strings, tools/flecc_top consumes /varz. Convention:
// any gauge reported under the `health.` family must be zero when the
// system is healthy — /healthz derives its `degraded` status purely
// from that family, so new subsystems join the rollup by reporting a
// gauge, not by editing this file. Gauges under `recovery.` (which
// are not zero-when-healthy, e.g. the directory generation) appear in
// /healthz's `recovery` object instead.
//
// tick() is driven from simulated time by whoever owns the simulator
// (FleccTestbed schedules a daemon event every `interval`); it only
// reads protocol state, so a run with a hub attached stays
// bit-identical to one without. `pace_ms` adds a *wall-clock* sleep
// per closed window so an external scraper gets a chance to observe a
// mid-run state — wall time never feeds back into simulated time, so
// pacing cannot perturb determinism either.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/alerts.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "sim/time.hpp"

namespace flecc::obs {

/// Knobs for the live-telemetry pipeline (see OBSERVABILITY.md,
/// "Live telemetry").
struct TelemetryOptions {
  /// Sampling cadence (simulated time) — one window per interval.
  sim::Duration interval = sim::msec(250);
  /// Windows retained in the ring.
  std::size_t window_capacity = 64;
  /// Windows rendered by /varz.
  std::size_t varz_windows = 8;
  /// Wall-clock milliseconds to sleep after each closed window (0 =
  /// run at full simulation speed). Lets live scrapers see mid-run
  /// windows without touching simulated time.
  unsigned pace_ms = 0;
};

/// Registry + alert engine + scrape-surface renderers, in one object
/// a bench wires up (see the file comment above).
class TelemetryHub {
 public:
  explicit TelemetryHub(TelemetryOptions opts = {});

  [[nodiscard]] const TelemetryOptions& options() const { return opts_; }
  [[nodiscard]] TimeSeriesRegistry& registry() { return registry_; }
  [[nodiscard]] const TimeSeriesRegistry& registry() const {
    return registry_;
  }
  [[nodiscard]] AlertEngine& alerts() { return alerts_; }
  [[nodiscard]] const AlertEngine& alerts() const { return alerts_; }

  /// Route alert_raised/alert_cleared events into `buf` (may be null).
  void set_trace(TraceBuffer* buf) { alerts_.set_trace(buf); }

  /// Close one window at simulated time `now`: sample collectors,
  /// evaluate alert rules, then (optionally) pace wall-clock.
  void tick(sim::Time now);

  /// Bumped by the serving layer; exported as telemetry.http.*.
  void note_http_request(bool ok) {
    ++http_requests_;
    if (!ok) ++http_errors_;
  }
  [[nodiscard]] std::uint64_t http_requests() const { return http_requests_; }

  // Renderers — safe to call from a server thread mid-run.
  [[nodiscard]] std::string render_metrics() const;
  [[nodiscard]] std::string render_varz() const;
  [[nodiscard]] std::string render_healthz() const;

  /// The /healthz status line: "alerting" if any alert is active,
  /// else "degraded" if any `health.*` gauge in the latest window is
  /// non-zero, else "ok".
  [[nodiscard]] std::string health_status() const;

 private:
  TelemetryOptions opts_;
  TimeSeriesRegistry registry_;
  AlertEngine alerts_;
  std::atomic<std::uint64_t> http_requests_{0};
  std::atomic<std::uint64_t> http_errors_{0};
};

}  // namespace flecc::obs
