#include "sim/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace flecc::sim {
namespace {

TEST(TableTest, RequiresColumns) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(TableTest, RowArityChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({std::int64_t{1}}), std::invalid_argument);
  t.add_row({std::int64_t{1}, std::string{"x"}});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.columns(), 2u);
}

TEST(TableTest, RendersAligned) {
  Table t({"name", "count"});
  t.add_row({std::string{"short"}, std::uint64_t{7}});
  t.add_row({std::string{"a-much-longer-name"}, std::uint64_t{12345}});
  const std::string text = t.to_string();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("a-much-longer-name"), std::string::npos);
  // The short name is padded to the widest cell in its column.
  EXPECT_NE(text.find("short             "), std::string::npos);
}

TEST(TableTest, RendersDoublesWithFixedPrecision) {
  Table t({"x"});
  t.add_row({2.5});
  EXPECT_NE(t.to_string().find("2.500"), std::string::npos);
}

TEST(TableTest, CsvBasics) {
  Table t({"group", "flecc", "multicast"});
  t.add_row({std::int64_t{10}, std::uint64_t{2600}, std::uint64_t{20400}});
  t.add_row({std::int64_t{20}, std::uint64_t{4600}, std::uint64_t{20400}});
  EXPECT_EQ(t.to_csv(),
            "group,flecc,multicast\n10,2600,20400\n20,4600,20400\n");
}

TEST(TableTest, CsvEscapesSpecials) {
  Table t({"note"});
  t.add_row({std::string{"plain"}});
  t.add_row({std::string{"has,comma"}});
  t.add_row({std::string{"has\"quote"}});
  EXPECT_EQ(t.to_csv(),
            "note\nplain\n\"has,comma\"\n\"has\"\"quote\"\n");
}

TEST(TableTest, WriteCsvRoundTrips) {
  Table t({"k", "v"});
  t.add_row({std::string{"alpha"}, std::int64_t{-3}});
  const std::string path = ::testing::TempDir() + "flecc_table_test.csv";
  ASSERT_TRUE(t.write_csv(path));
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "k,v\nalpha,-3\n");
  std::remove(path.c_str());
}

TEST(TableTest, WriteCsvFailsOnBadPath) {
  Table t({"x"});
  EXPECT_FALSE(t.write_csv("/nonexistent-dir/impossible.csv"));
}

}  // namespace
}  // namespace flecc::sim
