#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace flecc::sim {
namespace {

TEST(EventQueueTest, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(30, [&] { order.push_back(3); });
  q.push(10, [&] { order.push_back(1); });
  q.push(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SameTimeIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(42, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueueTest, NextTimeReportsEarliest) {
  EventQueue q;
  q.push(50, [] {});
  q.push(5, [] {});
  EXPECT_EQ(q.next_time(), 5);
}

TEST(EventQueueTest, NextTimeOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW((void)q.next_time(), std::logic_error);
}

TEST(EventQueueTest, PopOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.pop(), std::logic_error);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.push(10, [&] { ++fired; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(fired, 0);
}

TEST(EventQueueTest, CancelTwiceReturnsFalse) {
  EventQueue q;
  const EventId id = q.push(10, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueueTest, CancelPoppedEventReturnsFalse) {
  EventQueue q;
  const EventId id = q.push(10, [] {});
  q.pop();
  EXPECT_FALSE(q.cancel(id));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, CancelUnknownIdReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(12345));
  EXPECT_FALSE(q.cancel(kInvalidEventId));
}

TEST(EventQueueTest, CancelMiddleKeepsOthers) {
  EventQueue q;
  std::vector<int> order;
  q.push(10, [&] { order.push_back(1); });
  const EventId id = q.push(20, [&] { order.push_back(2); });
  q.push(30, [&] { order.push_back(3); });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueueTest, PendingTracksLifecycle) {
  EventQueue q;
  const EventId id = q.push(10, [] {});
  EXPECT_TRUE(q.pending(id));
  q.pop();
  EXPECT_FALSE(q.pending(id));
}

TEST(EventQueueTest, ClearDropsEverything) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) q.push(i, [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, CancelHeadThenNextTimeSkipsIt) {
  EventQueue q;
  const EventId head = q.push(1, [] {});
  q.push(2, [] {});
  EXPECT_TRUE(q.cancel(head));
  EXPECT_EQ(q.next_time(), 2);
}

class EventQueueStressTest : public ::testing::TestWithParam<int> {};

TEST_P(EventQueueStressTest, ManyEventsStayOrdered) {
  const int n = GetParam();
  EventQueue q;
  // Insert in a scrambled but deterministic order.
  for (int i = 0; i < n; ++i) {
    const Time when = (i * 7919) % n;
    q.push(when, [] {});
  }
  Time last = -1;
  int popped = 0;
  while (!q.empty()) {
    auto ev = q.pop();
    EXPECT_GE(ev.when, last);
    last = ev.when;
    ++popped;
  }
  EXPECT_EQ(popped, n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EventQueueStressTest,
                         ::testing::Values(1, 10, 100, 1000, 10000));

}  // namespace
}  // namespace flecc::sim
