#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace flecc::sim {
namespace {

TEST(SimulatorTest, StartsAtTimeZero) {
  Simulator s;
  EXPECT_EQ(s.now(), kTimeZero);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(SimulatorTest, RunAdvancesClockToEventTimes) {
  Simulator s;
  std::vector<Time> seen;
  s.schedule_at(100, [&] { seen.push_back(s.now()); });
  s.schedule_at(250, [&] { seen.push_back(s.now()); });
  EXPECT_EQ(s.run(), 2u);
  EXPECT_EQ(seen, (std::vector<Time>{100, 250}));
  EXPECT_EQ(s.now(), 250);
}

TEST(SimulatorTest, ScheduleAfterUsesCurrentTime) {
  Simulator s;
  Time fired_at = -1;
  s.schedule_at(100, [&] {
    s.schedule_after(50, [&] { fired_at = s.now(); });
  });
  s.run();
  EXPECT_EQ(fired_at, 150);
}

TEST(SimulatorTest, ScheduleInPastThrows) {
  Simulator s;
  s.schedule_at(100, [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(50, [] {}), std::invalid_argument);
  EXPECT_THROW(s.schedule_after(-1, [] {}), std::invalid_argument);
}

TEST(SimulatorTest, RunUntilExecutesOnlyDueEvents) {
  Simulator s;
  int fired = 0;
  s.schedule_at(10, [&] { ++fired; });
  s.schedule_at(20, [&] { ++fired; });
  s.schedule_at(30, [&] { ++fired; });
  EXPECT_EQ(s.run_until(20), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.now(), 20);
  EXPECT_EQ(s.pending_events(), 1u);
}

TEST(SimulatorTest, RunUntilAdvancesClockWithoutEvents) {
  Simulator s;
  s.run_until(500);
  EXPECT_EQ(s.now(), 500);
}

TEST(SimulatorTest, RunUntilPastThrows) {
  Simulator s;
  s.run_until(100);
  EXPECT_THROW(s.run_until(50), std::invalid_argument);
}

TEST(SimulatorTest, StopHaltsRun) {
  Simulator s;
  int fired = 0;
  s.schedule_at(1, [&] {
    ++fired;
    s.stop();
  });
  s.schedule_at(2, [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.pending_events(), 1u);
  // A subsequent run resumes.
  s.run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, StepExecutesOneEvent) {
  Simulator s;
  int fired = 0;
  s.schedule_at(5, [&] { ++fired; });
  s.schedule_at(6, [&] { ++fired; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, CancelledEventNeverRuns) {
  Simulator s;
  int fired = 0;
  const EventId id = s.schedule_at(10, [&] { ++fired; });
  EXPECT_TRUE(s.pending(id));
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.pending(id));
  s.run();
  EXPECT_EQ(fired, 0);
}

TEST(SimulatorTest, HandlersCanScheduleChains) {
  Simulator s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) s.schedule_after(1, chain);
  };
  s.schedule_at(0, chain);
  s.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(s.now(), 99);
  EXPECT_EQ(s.executed_events(), 100u);
}

TEST(SimulatorTest, DaemonEventsDoNotKeepRunAlive) {
  Simulator s;
  int daemon_fires = 0;
  // A self-rearming daemon (like a trigger poll).
  std::function<void()> poll = [&] {
    ++daemon_fires;
    s.schedule_after(100, poll, /*daemon=*/true);
  };
  s.schedule_after(100, poll, /*daemon=*/true);
  int work = 0;
  s.schedule_at(250, [&] { ++work; });
  s.run();  // must terminate despite the immortal daemon
  EXPECT_EQ(work, 1);
  // Daemons scheduled before the last non-daemon event did execute.
  EXPECT_EQ(daemon_fires, 2);  // at t=100 and t=200
  EXPECT_EQ(s.now(), 250);
}

TEST(SimulatorTest, RunWithOnlyDaemonsReturnsImmediately) {
  Simulator s;
  int fires = 0;
  s.schedule_after(10, [&] { ++fires; }, /*daemon=*/true);
  EXPECT_EQ(s.run(), 0u);
  EXPECT_EQ(fires, 0);
  EXPECT_EQ(s.pending_events(), 1u);
}

TEST(SimulatorTest, RunUntilExecutesDaemons) {
  Simulator s;
  int fires = 0;
  std::function<void()> poll = [&] {
    ++fires;
    s.schedule_after(100, poll, /*daemon=*/true);
  };
  s.schedule_after(100, poll, /*daemon=*/true);
  s.run_until(350);
  EXPECT_EQ(fires, 3);  // 100, 200, 300
  EXPECT_EQ(s.now(), 350);
}

TEST(SimulatorTest, CancelledDaemonCountsCorrectly) {
  Simulator s;
  const EventId d = s.schedule_after(10, [] {}, /*daemon=*/true);
  const EventId n = s.schedule_after(20, [] {});
  EXPECT_TRUE(s.cancel(d));
  EXPECT_TRUE(s.cancel(n));
  EXPECT_EQ(s.run(), 0u);  // nothing live
}

TEST(SimulatorTest, DaemonSpawningNonDaemonKeepsRunGoing) {
  Simulator s;
  int work_done = 0;
  // The daemon enqueues real work once (like an auto-pull firing).
  bool spawned = false;
  std::function<void()> poll = [&] {
    if (!spawned) {
      spawned = true;
      s.schedule_after(5, [&] { ++work_done; });
    }
    s.schedule_after(100, poll, /*daemon=*/true);
  };
  s.schedule_after(100, poll, /*daemon=*/true);
  s.schedule_at(150, [] {});  // keeps the run alive past the first poll
  s.run();
  EXPECT_EQ(work_done, 1);
}

TEST(SimulatorTest, TimeHelpersConvert) {
  EXPECT_EQ(msec(3), 3000);
  EXPECT_EQ(seconds(2), 2'000'000);
  EXPECT_DOUBLE_EQ(to_ms(1500), 1.5);
  EXPECT_DOUBLE_EQ(to_sec(2'500'000), 2.5);
}

}  // namespace
}  // namespace flecc::sim
