#include "sim/script.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace flecc::sim {
namespace {

TEST(ScriptTest, RunsStepsInOrder) {
  std::vector<int> order;
  Script s;
  s.then([&](Script::Next next) {
    order.push_back(1);
    next();
  });
  s.then([&](Script::Next next) {
    order.push_back(2);
    next();
  });
  bool complete = false;
  std::move(s).run([&] { complete = true; });
  EXPECT_TRUE(complete);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(ScriptTest, EmptyScriptCompletesImmediately) {
  bool complete = false;
  Script s;
  std::move(s).run([&] { complete = true; });
  EXPECT_TRUE(complete);
}

TEST(ScriptTest, RepeatPassesIndices) {
  std::vector<std::size_t> indices;
  Script s;
  s.repeat(4, [&](std::size_t i, Script::Next next) {
    indices.push_back(i);
    next();
  });
  std::move(s).run();
  EXPECT_EQ(indices, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(ScriptTest, AsyncStepsAcrossSimulatorEvents) {
  Simulator sim;
  std::vector<Time> times;
  Script s;
  s.then([&](Script::Next next) {
    sim.schedule_after(100, [&times, &sim, next = std::move(next)] {
      times.push_back(sim.now());
      next();
    });
  });
  s.then([&](Script::Next next) {
    sim.schedule_after(50, [&times, &sim, next = std::move(next)] {
      times.push_back(sim.now());
      next();
    });
  });
  bool complete = false;
  std::move(s).run([&] { complete = true; });
  EXPECT_FALSE(complete);  // first step is waiting on the simulator
  sim.run();
  EXPECT_TRUE(complete);
  EXPECT_EQ(times, (std::vector<Time>{100, 150}));
}

TEST(ScriptTest, StateOutlivesScriptObject) {
  Simulator sim;
  int fired = 0;
  {
    Script s;
    s.then([&](Script::Next next) {
      sim.schedule_after(10, [&fired, next = std::move(next)] {
        ++fired;
        next();
      });
    });
    std::move(s).run();
  }  // Script destroyed; the chain must still complete
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(ScriptTest, MixedThenAndRepeat) {
  std::vector<std::string> log;
  Script s;
  s.then([&](Script::Next next) {
    log.push_back("start");
    next();
  });
  s.repeat(2, [&](std::size_t i, Script::Next next) {
    log.push_back("iter" + std::to_string(i));
    next();
  });
  s.then([&](Script::Next next) {
    log.push_back("end");
    next();
  });
  std::move(s).run();
  EXPECT_EQ(log, (std::vector<std::string>{"start", "iter0", "iter1", "end"}));
}

}  // namespace
}  // namespace flecc::sim
