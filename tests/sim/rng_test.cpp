#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace flecc::sim {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const auto x = r.uniform_int(-5, 9);
    EXPECT_GE(x, -5);
    EXPECT_LE(x, 9);
  }
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng r(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_int(3, 3), 3);
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng r(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformDoubleMeanNearHalf) {
  Rng r(5);
  double sum = 0.0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng r(9);
  double sum = 0.0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng r(13);
  double sum = 0.0, sq = 0.0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(RngTest, ChanceExtremes) {
  Rng r(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng r(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto sorted = v;
  r.shuffle(v);
  auto shuffled_sorted = v;
  std::sort(shuffled_sorted.begin(), shuffled_sorted.end());
  EXPECT_EQ(shuffled_sorted, sorted);
}

TEST(RngTest, PickReturnsMember) {
  Rng r(23);
  const std::vector<int> v{4, 8, 15, 16, 23, 42};
  for (int i = 0; i < 100; ++i) {
    const int x = r.pick(v);
    EXPECT_NE(std::find(v.begin(), v.end(), x), v.end());
  }
}

TEST(RngTest, SplitMix64MixesState) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
  EXPECT_NE(s, 0u);
}

}  // namespace
}  // namespace flecc::sim
