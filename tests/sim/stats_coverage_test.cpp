// Deeper coverage of the stats plumbing the obs layer leans on:
// RunningStat::merge chains (parallel-reduction shapes), quantile edge
// cases, and histogram boundary behavior.
#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace flecc::sim {
namespace {

TEST(RunningStatMergeTest, ChainOfManyPartialsMatchesOnePass) {
  // Fold 10 shards pairwise, the way a bench merges per-agent stats.
  RunningStat whole;
  std::vector<RunningStat> shards(10);
  for (int i = 0; i < 1000; ++i) {
    const double x = (i * 37 % 101) - 50.0;
    whole.add(x);
    shards[static_cast<std::size_t>(i) % shards.size()].add(x);
  }
  RunningStat merged;
  for (const auto& s : shards) merged.merge(s);
  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_NEAR(merged.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(merged.variance(), whole.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(merged.min(), whole.min());
  EXPECT_DOUBLE_EQ(merged.max(), whole.max());
  EXPECT_NEAR(merged.sum(), whole.sum(), 1e-9);
}

TEST(RunningStatMergeTest, EmptyIntoNonEmptyAndBack) {
  RunningStat filled;
  filled.add(2.0);
  filled.add(4.0);
  RunningStat empty;

  RunningStat a = filled;
  a.merge(empty);  // no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);

  RunningStat b;  // empty absorbs filled wholesale
  b.merge(filled);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 3.0);
  EXPECT_DOUBLE_EQ(b.min(), 2.0);
  EXPECT_DOUBLE_EQ(b.max(), 4.0);
}

TEST(RunningStatMergeTest, MinMaxCrossShards) {
  RunningStat lo, hi;
  lo.add(-7.0);
  lo.add(1.0);
  hi.add(3.0);
  hi.add(99.0);
  lo.merge(hi);
  EXPECT_DOUBLE_EQ(lo.min(), -7.0);
  EXPECT_DOUBLE_EQ(lo.max(), 99.0);
}

TEST(RunningStatMergeTest, MergeSelfCopyDoublesCounts) {
  RunningStat s;
  s.add(1.0);
  s.add(5.0);
  const RunningStat copy = s;
  s.merge(copy);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.sum(), 12.0);
}

TEST(SampleSetQuantileTest, ExtremesAndSingleSample) {
  SampleSet one;
  one.add(42.0);
  EXPECT_DOUBLE_EQ(one.quantile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(one.quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(one.quantile(1.0), 42.0);

  SampleSet many;
  for (int i = 1; i <= 100; ++i) many.add(i);
  EXPECT_DOUBLE_EQ(many.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(many.quantile(1.0), 100.0);
  EXPECT_NEAR(many.quantile(0.99), 99.01, 1e-9);
}

TEST(SampleSetQuantileTest, DuplicatesCollapse) {
  SampleSet s;
  for (int i = 0; i < 50; ++i) s.add(5.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 10.0);
}

TEST(SampleSetQuantileTest, ClearResets) {
  SampleSet s;
  s.add(1.0);
  s.clear();
  EXPECT_TRUE(s.empty());
  s.add(9.0);
  EXPECT_DOUBLE_EQ(s.median(), 9.0);
}

TEST(HistogramBoundaryTest, EdgesLandWhereDocumented) {
  Histogram h(0.0, 10.0, 10);  // [0,10) in 10 bins of width 1
  h.add(0.0);                  // left edge: bin 0
  h.add(9.999);                // just inside: bin 9
  h.add(10.0);                 // right edge is exclusive: overflow
  h.add(-0.001);               // underflow
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(HistogramBoundaryTest, BinLoReportsLeftEdges) {
  Histogram h(100.0, 200.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 100.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 125.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 175.0);
}

TEST(HistogramBoundaryTest, LatencyShapedFill) {
  // The shape flecc_trace uses: microsecond latencies, long tail.
  Histogram h(0.0, 1000.0, 20);
  for (int i = 0; i < 95; ++i) h.add(50.0 + i);
  for (int i = 0; i < 5; ++i) h.add(5000.0);
  EXPECT_EQ(h.total(), 100u);
  EXPECT_EQ(h.overflow(), 5u);
  std::size_t binned = 0;
  for (std::size_t i = 0; i < h.bins(); ++i) binned += h.bin_count(i);
  EXPECT_EQ(binned + h.overflow() + h.underflow(), h.total());
}

}  // namespace
}  // namespace flecc::sim
