#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace flecc::sim {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, KnownMoments) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatTest, SingleSampleVarianceIsZero) {
  RunningStat s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStatTest, MergeEqualsSequential) {
  RunningStat all, a, b;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37 - 3.0;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatTest, MergeWithEmpty) {
  RunningStat a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

TEST(SampleSetTest, QuantilesExact) {
  SampleSet s;
  for (const double x : {5.0, 1.0, 3.0, 2.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(SampleSetTest, QuantileInterpolates) {
  SampleSet s;
  s.add(0.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.3), 3.0);
}

TEST(SampleSetTest, QuantileErrors) {
  SampleSet s;
  EXPECT_THROW((void)s.quantile(0.5), std::logic_error);
  s.add(1.0);
  EXPECT_THROW((void)s.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW((void)s.quantile(1.1), std::invalid_argument);
}

TEST(SampleSetTest, AddAfterQuantileStillSorted) {
  SampleSet s;
  s.add(2.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 2.0);
  s.add(0.5);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 0.5);
}

TEST(HistogramTest, BinsLinearly) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);   // bin 0
  h.add(1.99);  // bin 0
  h.add(2.0);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(HistogramTest, UnderAndOverflow) {
  Histogram h(0.0, 1.0, 2);
  h.add(-0.5);
  h.add(1.0);  // hi is exclusive
  h.add(2.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
}

TEST(HistogramTest, BadConstructionThrows) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(HistogramTest, RendersBars) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  const std::string out = h.to_string(10);
  EXPECT_NE(out.find("##########"), std::string::npos);
}

TEST(CounterSetTest, IncrementAndQuery) {
  CounterSet c;
  c.inc("a");
  c.inc("a", 4);
  c.inc("b");
  EXPECT_EQ(c.get("a"), 5u);
  EXPECT_EQ(c.get("b"), 1u);
  EXPECT_EQ(c.get("missing"), 0u);
  EXPECT_EQ(c.total(), 6u);
}

TEST(CounterSetTest, ResetClears) {
  CounterSet c;
  c.inc("x", 10);
  c.reset();
  EXPECT_EQ(c.get("x"), 0u);
  EXPECT_EQ(c.total(), 0u);
}

TEST(CounterSetTest, ToStringSortedByName) {
  CounterSet c;
  c.inc("zeta");
  c.inc("alpha", 2);
  EXPECT_EQ(c.to_string(), "alpha=2\nzeta=1\n");
}

TEST(TimeSeriesTest, RecordsAndSummarizes) {
  TimeSeries ts;
  ts.add(10, 1.0);
  ts.add(20, 3.0);
  ts.add(30, 5.0);
  EXPECT_EQ(ts.size(), 3u);
  EXPECT_EQ(ts.at(1).at, 20);
  EXPECT_DOUBLE_EQ(ts.at(1).value, 3.0);
  const auto stat = ts.summarize();
  EXPECT_DOUBLE_EQ(stat.mean(), 3.0);
  EXPECT_DOUBLE_EQ(stat.max(), 5.0);
}

}  // namespace
}  // namespace flecc::sim
