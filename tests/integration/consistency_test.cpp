// Cross-module invariants of the full system, exercised through the
// airline application over the simulated LAN.
#include <gtest/gtest.h>

#include "airline/testbed.hpp"

namespace flecc::airline {
namespace {

TEST(ConsistencyTest, StrongModeNeverLosesOrDuplicatesSeats) {
  TestbedOptions opts;
  opts.n_agents = 5;
  opts.group_size = 5;
  opts.mode = core::Mode::kStrong;
  opts.capacity = 1000;
  FleccTestbed tb(opts);
  const FlightNumber flight = tb.assignment().agent_flights[0][0];

  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    tb.agent(i).run_reservation_loop(8, flight, 1, /*pull_first=*/false);
  }
  tb.run();
  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    tb.agent(i).shutdown();
  }
  tb.run();

  std::int64_t confirmed = 0;
  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    confirmed += tb.agent(i).view().confirmed_total();
  }
  EXPECT_EQ(confirmed, 40);
  EXPECT_EQ(tb.database().find(flight)->reserved, confirmed);
  EXPECT_EQ(tb.database().rejected_seats(), 0u);
}

TEST(ConsistencyTest, StrongModeSerializesSoNobodyOversells) {
  // Capacity below demand: in strong mode every agent works on exact
  // seat state, so local refusals happen instead of primary clamping.
  TestbedOptions opts;
  opts.n_agents = 4;
  opts.group_size = 4;
  opts.mode = core::Mode::kStrong;
  opts.capacity = 10;
  FleccTestbed tb(opts);
  const FlightNumber flight = tb.assignment().agent_flights[0][0];
  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    tb.agent(i).run_reservation_loop(5, flight, 1, false);
  }
  tb.run();
  for (std::size_t i = 0; i < tb.agent_count(); ++i) tb.agent(i).shutdown();
  tb.run();

  std::int64_t confirmed = 0, refused = 0;
  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    confirmed += tb.agent(i).view().confirmed_total();
    refused += tb.agent(i).view().refused_total();
  }
  EXPECT_EQ(confirmed, 10);  // exactly capacity
  EXPECT_EQ(refused, 10);    // the rest correctly refused at the views
  EXPECT_EQ(tb.database().find(flight)->reserved, 10);
  EXPECT_EQ(tb.database().rejected_seats(), 0u);  // never clamped
}

TEST(ConsistencyTest, WeakModeConservesSeatsAfterQuiescence) {
  TestbedOptions opts;
  opts.n_agents = 6;
  opts.group_size = 3;
  opts.mode = core::Mode::kWeak;
  opts.validity_trigger = "false";
  opts.capacity = 100000;
  FleccTestbed tb(opts);
  tb.init_all_agents();
  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    tb.agent(i).run_reservation_loop(
        6, tb.assignment().agent_flights[i][0], 1, true);
  }
  tb.run();
  for (std::size_t i = 0; i < tb.agent_count(); ++i) tb.agent(i).shutdown();
  tb.run();

  std::int64_t confirmed = 0;
  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    confirmed += tb.agent(i).view().confirmed_total();
  }
  EXPECT_EQ(confirmed, 36);
  EXPECT_EQ(tb.database().total_reserved(), confirmed);
}

TEST(ConsistencyTest, WeakModeOverbookingIsClampedByMergePolicy) {
  // Weak mode with stale data and demand only at the primary: agents may
  // jointly oversell; the application's merge function (delta + clamp)
  // resolves the conflict, as §4.1 prescribes.
  TestbedOptions opts;
  opts.n_agents = 4;
  opts.group_size = 4;
  opts.mode = core::Mode::kWeak;
  opts.capacity = 10;
  FleccTestbed tb(opts);
  tb.init_all_agents();
  const FlightNumber flight = tb.assignment().agent_flights[0][0];
  // Nobody pulls between ops: everyone believes seats are free.
  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    tb.agent(i).run_reservation_loop(5, flight, 1, /*pull_first=*/false);
  }
  tb.run();
  for (std::size_t i = 0; i < tb.agent_count(); ++i) tb.agent(i).shutdown();
  tb.run();

  const auto* f = tb.database().find(flight);
  EXPECT_EQ(f->reserved, 10);                   // never exceeds capacity
  EXPECT_EQ(tb.database().rejected_seats(), 10u);  // 20 asked, 10 clamped
}

TEST(ConsistencyTest, DisjointGroupsNeverInterfere) {
  TestbedOptions opts;
  opts.n_agents = 4;
  opts.group_size = 2;
  opts.validity_trigger = "false";
  FleccTestbed tb(opts);
  tb.init_all_agents();
  // Group 0 works; group 1 stays idle.
  tb.agent(0).run_reservation_loop(5, tb.assignment().agent_flights[0][0], 1,
                                   true);
  tb.agent(1).run_reservation_loop(5, tb.assignment().agent_flights[1][0], 1,
                                   true);
  tb.run();
  // Quality of the idle, disjoint group must remain pristine.
  EXPECT_EQ(tb.directory().quality(tb.agent(2).cache().id()), 0u);
  EXPECT_EQ(tb.directory().quality(tb.agent(3).cache().id()), 0u);
  // But group 0's members have seen each other's traffic settle.
  EXPECT_EQ(tb.directory().quality(tb.agent(0).cache().id()), 0u);
}

TEST(ConsistencyTest, ModeSwitchMidRunKeepsConservation) {
  TestbedOptions opts;
  opts.n_agents = 3;
  opts.group_size = 3;
  opts.mode = core::Mode::kWeak;
  opts.validity_trigger = "false";
  opts.capacity = 100000;
  FleccTestbed tb(opts);
  tb.init_all_agents();
  const FlightNumber flight = tb.assignment().agent_flights[0][0];

  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    TravelAgent& agent = tb.agent(i);
    agent.run_reservation_loop(3, flight, 1, true, [&agent, flight] {
      agent.switch_mode(core::Mode::kStrong, [&agent, flight] {
        agent.run_reservation_loop(3, flight, 1, false, [&agent] {
          agent.switch_mode(core::Mode::kWeak,
                            [&agent] { agent.shutdown(); });
        });
      });
    });
  }
  tb.run();

  std::int64_t confirmed = 0;
  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    confirmed += tb.agent(i).view().confirmed_total();
  }
  EXPECT_EQ(confirmed, 18);
  EXPECT_EQ(tb.database().total_reserved(), confirmed);
}

}  // namespace
}  // namespace flecc::airline
