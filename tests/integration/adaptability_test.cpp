// End-to-end checks of the behaviors the paper's evaluation highlights:
// the adaptability trade-off (Figure 5) and the trigger flexibility
// effect (Figure 6), asserted qualitatively so the benches can report
// the quantitative series.
#include <gtest/gtest.h>

#include <algorithm>

#include "airline/testbed.hpp"

namespace flecc::airline {
namespace {

TEST(AdaptabilityTest, StrongModeCostsLatencyButBuysFreshData) {
  TestbedOptions opts;
  opts.n_agents = 5;
  opts.group_size = 5;
  opts.mode = core::Mode::kWeak;
  opts.capacity = 100000;
  FleccTestbed tb(opts);
  tb.init_all_agents();
  const FlightNumber flight = tb.assignment().agent_flights[0][0];

  // WEAK phase: no pulls — cheap ops, growing staleness. Each agent
  // pushes once at the end so the directory sees the updates.
  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    tb.agent(i).run_reservation_loop(5, flight, 1, /*pull_first=*/false);
  }
  tb.run();
  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    tb.agent(i).push_now();
  }
  tb.run();
  sim::RunningStat weak_latency;
  std::uint64_t weak_quality = 0;
  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    for (const double l : tb.agent(i).op_latencies().samples()) {
      weak_latency.add(l);
    }
    weak_quality += tb.directory().quality(tb.agent(i).cache().id());
  }
  // The views never re-synchronized, so the other agents' pushes are
  // unseen remote updates — but the weak ops were (near-)local.
  EXPECT_GT(weak_quality, 0u);

  // STRONG phase: sample quality at the moment each method executes
  // (Figure 5 reports "the quality of the data used during the
  // execution").
  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    tb.agent(i).switch_mode(core::Mode::kStrong);
  }
  tb.run();
  std::uint64_t strong_quality_max = 0;
  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    TravelAgent& agent = tb.agent(i);
    agent.set_op_probe([&tb, &agent, &strong_quality_max](std::size_t,
                                                          sim::Time) {
      strong_quality_max =
          std::max(strong_quality_max,
                   tb.directory().quality(agent.cache().id()));
    });
    agent.run_reservation_loop(5, flight, 1, false);
  }
  tb.run();
  sim::RunningStat strong_latency;
  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    const auto& samples = tb.agent(i).op_latencies().samples();
    for (std::size_t k = 5; k < samples.size(); ++k) {
      strong_latency.add(samples[k]);
    }
  }
  // In strong mode every use section starts from fresh merged state.
  EXPECT_EQ(strong_quality_max, 0u);
  // The paper's trade-off: strong execution is slower than weak.
  EXPECT_GT(strong_latency.mean(), weak_latency.mean());
}

TEST(AdaptabilityTest, PullTriggerImprovesQualityAtMessageCost) {
  auto run_scenario = [](bool with_trigger) {
    TestbedOptions opts;
    opts.n_agents = 2;
    opts.group_size = 2;
    opts.capacity = 100000;
    opts.trigger_poll = sim::msec(50);
    if (with_trigger) opts.pull_trigger = "(t > 200)";
    FleccTestbed tb(opts);
    tb.init_all_agents();
    const FlightNumber flight = tb.assignment().agent_flights[0][0];

    // Agent 0 produces updates periodically; agent 1 idles (except its
    // trigger, if any).
    for (int k = 0; k < 10; ++k) {
      tb.simulator().schedule_at(
          sim::msec(100 * (k + 1)), [&tb, flight] {
            tb.agent(0).view().confirm_tickets(flight, 1);
            tb.agent(0).push_now();
          });
    }
    tb.run_until(sim::msec(1500));
    struct Result {
      std::uint64_t quality;
      std::uint64_t messages;
    };
    return Result{tb.directory().quality(tb.agent(1).cache().id()),
                  tb.fabric().sent_count()};
  };

  const auto without = run_scenario(false);
  const auto with = run_scenario(true);
  // Figure 6's trade-off: triggers keep the data fresher (lower unseen
  // count at the end) but cost additional messages (182 vs 116 in the
  // paper's run).
  EXPECT_LT(with.quality, without.quality);
  EXPECT_GT(with.messages, without.messages);
}

TEST(AdaptabilityTest, ValidityTriggerAdaptsFetchBehaviorAtRuntime) {
  // An agent whose validity trigger tolerates staleness below a
  // threshold: fetch rounds happen only once enough unseen updates pile
  // up — consistency requirements enforced by the system, not the app.
  TestbedOptions opts;
  opts.n_agents = 2;
  opts.group_size = 2;
  opts.capacity = 100000;
  opts.validity_trigger = "(_unseen < 3)";
  FleccTestbed tb(opts);
  tb.init_all_agents();
  const FlightNumber flight = tb.assignment().agent_flights[0][0];

  // One remote update → pull stays cheap (no fetch round).
  tb.agent(0).view().confirm_tickets(flight, 1);
  tb.agent(0).push_now();
  tb.run();
  tb.agent(1).pull_now();
  tb.run();
  EXPECT_EQ(tb.directory().stats().get("op.pull.fetch_round"), 0u);

  // Four remote updates → threshold crossed → demand fetch.
  for (int k = 0; k < 4; ++k) {
    tb.agent(0).view().confirm_tickets(flight, 1);
    tb.agent(0).push_now();
    tb.run();
  }
  tb.agent(1).pull_now();
  tb.run();
  EXPECT_EQ(tb.directory().stats().get("op.pull.fetch_round"), 1u);
}

}  // namespace
}  // namespace flecc::airline
