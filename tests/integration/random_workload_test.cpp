// Randomized protocol stress: agents perform random operation sequences
// (pull / push / work / mode switches / early shutdown) over shared
// flights, and the system must uphold its global invariants at
// quiescence — whatever the interleaving.
//
// Invariants:
//   I1 (conservation): every locally confirmed seat reaches the primary
//       database, as an accepted reservation or a counted rejection:
//       db.total_reserved + db.rejected_seats == Σ confirmed_total.
//   I2 (capacity): no flight's reserved count ever exceeds capacity.
//   I3 (exclusivity): at most one exclusive view per conflict group at
//       any sampled instant.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "airline/testbed.hpp"
#include "sim/rng.hpp"
#include "sim/script.hpp"

namespace flecc::airline {
namespace {

struct Params {
  std::uint64_t seed;
  std::size_t n_agents;
  std::size_t group_size;
  std::int64_t capacity;
};

class RandomWorkloadTest : public ::testing::TestWithParam<Params> {};

TEST_P(RandomWorkloadTest, InvariantsHoldAtQuiescence) {
  const Params p = GetParam();
  TestbedOptions opts;
  opts.n_agents = p.n_agents;
  opts.group_size = p.group_size;
  opts.capacity = p.capacity;
  opts.validity_trigger = "false";
  FleccTestbed tb(opts);
  tb.init_all_agents();

  sim::Rng rng(p.seed);
  std::size_t alive = p.n_agents;

  for (std::size_t i = 0; i < p.n_agents; ++i) {
    TravelAgent& agent = tb.agent(i);
    const FlightNumber flight = tb.assignment().agent_flights[i][0];
    const std::size_t ops = static_cast<std::size_t>(rng.uniform_int(3, 12));
    const bool dies_early = rng.chance(0.2);

    sim::Script script;
    for (std::size_t k = 0; k < ops; ++k) {
      const auto kind = rng.uniform_int(0, 6);
      switch (kind) {
        case 0:
          script.then([&agent](sim::Script::Next next) {
            agent.pull_now(std::move(next));
          });
          break;
        case 1:
          script.then([&agent](sim::Script::Next next) {
            agent.push_now(std::move(next));
          });
          break;
        case 2:
        case 3: {
          const auto seats = rng.uniform_int(1, 3);
          const bool pull_first = rng.chance(0.5);
          script.then([&agent, flight, seats,
                       pull_first](sim::Script::Next next) {
            agent.reserve_once(flight, seats, pull_first, std::move(next));
          });
          break;
        }
        case 4:
          script.then([&agent](sim::Script::Next next) {
            agent.switch_mode(core::Mode::kStrong, std::move(next));
          });
          break;
        case 5:
          script.then([&agent](sim::Script::Next next) {
            agent.switch_mode(core::Mode::kWeak, std::move(next));
          });
          break;
        case 6: {
          const auto seats = rng.uniform_int(1, 2);
          script.then([&agent, flight, seats](sim::Script::Next next) {
            agent.view().cancel_tickets(flight, seats);
            next();
          });
          break;
        }
      }
    }
    if (dies_early) {
      script.then([&agent, &alive](sim::Script::Next next) {
        --alive;
        agent.shutdown(std::move(next));
      });
    }
    std::move(script).run();
  }
  tb.run();

  // I3 sampled after the storm, before final teardown.
  for (std::size_t g = 0; g < tb.assignment().group_count; ++g) {
    std::size_t exclusive = 0;
    for (std::size_t i = 0; i < p.n_agents; ++i) {
      if (tb.assignment().agent_group[i] != g) continue;
      if (tb.directory().is_exclusive(tb.agent(i).cache().id())) {
        ++exclusive;
      }
    }
    EXPECT_LE(exclusive, 1u) << "group " << g;
  }

  // Orderly teardown of the survivors.
  for (std::size_t i = 0; i < p.n_agents; ++i) {
    if (tb.agent(i).cache().alive()) tb.agent(i).shutdown();
  }
  tb.run();

  // I1: conservation — every net-sold seat (confirmed minus locally
  // cancelled) reaches the database, accepted or counted as rejected.
  std::int64_t net_sold = 0;
  for (std::size_t i = 0; i < p.n_agents; ++i) {
    net_sold += tb.agent(i).view().net_sold();
  }
  EXPECT_EQ(tb.database().total_reserved() +
                static_cast<std::int64_t>(tb.database().rejected_seats()),
            net_sold)
      << "seed " << p.seed;

  // I2: capacity.
  for (const auto& [number, flight] : tb.database()) {
    (void)number;
    EXPECT_LE(flight.reserved, flight.capacity);
    EXPECT_GE(flight.reserved, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Storms, RandomWorkloadTest,
    ::testing::Values(Params{1, 8, 4, 1 << 20}, Params{2, 8, 4, 1 << 20},
                      Params{3, 8, 8, 1 << 20}, Params{4, 12, 3, 1 << 20},
                      Params{5, 6, 6, 20},    // tight capacity: clamping
                      Params{6, 6, 6, 20}, Params{7, 10, 5, 50},
                      Params{8, 16, 4, 1 << 20}, Params{9, 16, 16, 100},
                      Params{10, 4, 2, 10}));

}  // namespace
}  // namespace flecc::airline
