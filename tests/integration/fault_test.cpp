// Failure-injection tests: crashed cache managers, partitions, and
// straggler handling across the protocol stack.
#include <gtest/gtest.h>

#include "airline/testbed.hpp"
#include "core/directory_manager.hpp"

namespace flecc::airline {
namespace {

TEST(FaultTest, CrashedAgentDoesNotWedgeDemandFetch) {
  TestbedOptions opts;
  opts.n_agents = 3;
  opts.group_size = 3;
  opts.validity_trigger = "false";
  opts.dir_cfg.fetch_timeout = sim::msec(100);
  FleccTestbed tb(opts);
  tb.init_all_agents();

  // Agent 0 crashes silently (endpoint vanishes, no kill handshake).
  tb.fabric().unbind(tb.agent(0).cache().address());

  bool done = false;
  tb.agent(1).reserve_once(tb.assignment().agent_flights[1][0], 1, true,
                           [&] { done = true; });
  tb.run();
  EXPECT_TRUE(done);
  EXPECT_GE(tb.directory().stats().get("op.fetch.timeout"), 1u);
}

TEST(FaultTest, CrashedOwnerDoesNotWedgeStrongAcquire) {
  TestbedOptions opts;
  opts.n_agents = 2;
  opts.group_size = 2;
  opts.mode = core::Mode::kStrong;
  opts.dir_cfg.fetch_timeout = sim::msec(100);
  FleccTestbed tb(opts);

  bool a_done = false;
  tb.agent(0).reserve_once(tb.assignment().agent_flights[0][0], 1, false,
                           [&] { a_done = true; });
  tb.run();
  ASSERT_TRUE(a_done);

  // The exclusive owner crashes; the next acquire must proceed after the
  // invalidation timeout.
  tb.fabric().unbind(tb.agent(0).cache().address());
  bool b_done = false;
  tb.agent(1).reserve_once(tb.assignment().agent_flights[1][0], 1, false,
                           [&] { b_done = true; });
  tb.run();
  EXPECT_TRUE(b_done);
  EXPECT_GE(tb.directory().stats().get("op.acquire.timeout"), 1u);
}

TEST(FaultTest, GracefulKillDuringFetchRoundSettlesIt) {
  TestbedOptions opts;
  opts.n_agents = 3;
  opts.group_size = 3;
  opts.validity_trigger = "false";
  // Long timeout: if the kill did not settle the round, the test's pull
  // would only complete after 10 simulated seconds.
  opts.dir_cfg.fetch_timeout = sim::seconds(10);
  FleccTestbed tb(opts);
  tb.init_all_agents();

  bool pulled = false;
  // Agent 1 enters its use section so its fetch reply is deferred; agent
  // 2's pull therefore waits on agent 1... who then deregisters. The
  // kill must settle the pending fetch round without the 10 s timeout.
  tb.agent(1).cache().start_use_image();
  tb.run();
  tb.agent(2).pull_now([&] { pulled = true; });
  tb.run_until(tb.simulator().now() + sim::seconds(1));
  EXPECT_FALSE(pulled);  // round blocked on agent 1
  tb.agent(1).shutdown();
  tb.run();
  EXPECT_TRUE(pulled);
  EXPECT_LT(tb.simulator().now(), sim::seconds(10));
}

TEST(FaultTest, PartitionedPullRetransmitsAndCompletesAfterHeal) {
  TestbedOptions opts;
  opts.n_agents = 2;
  opts.group_size = 2;
  FleccTestbed tb(opts);
  tb.init_all_agents();

  // Cut agent 0 off from the directory and agent 1.
  tb.partition_agents({0});
  bool done = false;
  tb.agent(0).pull_now([&] { done = true; });
  tb.run_until(tb.simulator().now() + sim::seconds(1));
  EXPECT_FALSE(done);  // every attempt dropped at the partition
  EXPECT_GE(tb.fabric().counters().get("msg.dropped.partition"), 1u);

  // Heal; the reliability layer retransmits the SAME pull (same request
  // id) until it gets through — no application-level reissue needed.
  tb.heal_partition();
  tb.run();
  EXPECT_TRUE(done);
  EXPECT_GE(tb.agent(0).cache().stats().get("op.retry"), 1u);
  EXPECT_TRUE(tb.agent(0).cache().registered());
  EXPECT_EQ(tb.agent(0).cache().queued_ops(), 0u);
  EXPECT_FALSE(tb.agent(0).cache().op_in_flight());
}

TEST(FaultTest, LinkOutageRetransmitsAndCompletesAfterRepair) {
  TestbedOptions opts;
  opts.n_agents = 2;
  opts.group_size = 2;
  FleccTestbed tb(opts);
  tb.init_all_agents();

  // Cut agent 0's LAN uplink (host link 0 in the star topology).
  tb.fabric().topology().set_link_up(0, false);
  bool done = false;
  tb.agent(0).pull_now([&] { done = true; });
  tb.run_until(tb.simulator().now() + sim::seconds(1));
  EXPECT_FALSE(done);  // request was dropped: no route
  EXPECT_GE(tb.fabric().counters().get("msg.dropped.no_route"), 1u);

  tb.fabric().topology().set_link_up(0, true);
  tb.run();
  EXPECT_TRUE(done);
  EXPECT_GE(tb.agent(0).cache().stats().get("op.retry"), 1u);
}

TEST(FaultTest, DirectoryRestartRecoversViaReconnect) {
  // The §4.1 fail-safe scenario: the original component (and its
  // directory manager) crashes and restarts empty; cache managers
  // reconnect, re-register, and surrender their pending updates.
  sim::Simulator simulator;
  std::vector<net::NodeId> hosts;
  auto topo = net::Topology::lan(3, net::LinkSpec{}, &hosts);
  net::SimFabric fabric(simulator, std::move(topo));

  auto db = FlightDatabase::uniform(100, 2, 1000);
  FlightDatabaseAdapter adapter(db);
  const net::Address dir_addr{hosts[2], 1};
  auto directory =
      std::make_unique<core::DirectoryManager>(fabric, dir_addr, adapter);

  TravelAgent::Config cfg;
  cfg.flights = {100};
  TravelAgent agent1(fabric, net::Address{hosts[0], 1}, dir_addr, cfg);
  TravelAgent agent2(fabric, net::Address{hosts[1], 1}, dir_addr, cfg);
  agent1.init();
  agent2.init();
  simulator.run();

  // Agent 1 does local work that has not reached the database yet.
  agent1.view().confirm_tickets(100, 7);
  agent1.cache().start_use_image();
  agent1.cache().end_use_image(true);

  // The directory crashes and restarts with a fresh registry. The
  // database object survives (it is the durable component state).
  directory.reset();
  directory =
      std::make_unique<core::DirectoryManager>(fabric, dir_addr, adapter);

  // A pull against the new incarnation would be ignored (unknown view):
  // the agents reconnect instead.
  bool r1 = false, r2 = false;
  agent1.cache().reconnect([&] { r1 = true; });
  agent2.cache().reconnect([&] { r2 = true; });
  simulator.run();
  EXPECT_TRUE(r1);
  EXPECT_TRUE(r2);
  EXPECT_TRUE(agent1.cache().registered());
  EXPECT_TRUE(agent2.cache().registered());
  EXPECT_EQ(directory->registered_count(), 2u);
  // The pending 7 seats survived the crash via the reconnect re-push.
  EXPECT_EQ(db.find(100)->reserved, 7);

  // Normal operation resumes end to end.
  agent2.run_reservation_loop(3, 100, 1, true);
  simulator.run();
  agent1.shutdown();
  agent2.shutdown();
  simulator.run();
  EXPECT_EQ(db.find(100)->reserved, 10);
}

TEST(FaultTest, ReconnectWithCleanStateJustReinitializes) {
  TestbedOptions opts;
  opts.n_agents = 1;
  opts.group_size = 1;
  FleccTestbed tb(opts);
  tb.init_all_agents();
  const auto before = tb.directory().version();
  bool done = false;
  tb.agent(0).cache().reconnect([&] { done = true; });
  tb.run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(tb.agent(0).cache().valid());
  // No dirty state: no push, so the version is unchanged.
  EXPECT_EQ(tb.directory().version(), before);
  // The re-registration superseded the ghost record.
  EXPECT_EQ(tb.directory().registered_count(), 1u);
  EXPECT_EQ(tb.directory().stats().get("op.register.superseded"), 1u);
}

// ---- lossy-network airline runs ------------------------------------------
//
// With the reliability layer every operation must complete despite
// seeded message loss, and the database must end up exactly equal to
// what the agents confirmed (retransmission + idempotent replay: no
// lost op, no double-merge).

struct LossCase {
  double loss;
  core::Mode mode;
};

class LossyAirlineTest : public ::testing::TestWithParam<LossCase> {};

TEST_P(LossyAirlineTest, AllOpsCompleteAndDatabaseIsExact) {
  const LossCase c = GetParam();
  TestbedOptions opts;
  opts.n_agents = 4;
  opts.group_size = 4;
  opts.capacity = 100000;
  opts.mode = c.mode;
  opts.fabric_cfg.loss_probability = c.loss;
  opts.fabric_cfg.seed = 0xf1ecc;
  FleccTestbed tb(opts);
  tb.init_all_agents();

  constexpr std::size_t kOps = 10;
  const FlightNumber flight = tb.assignment().agent_flights[0][0];
  std::size_t loops_done = 0;
  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    tb.agent(i).run_reservation_loop(kOps, flight, 1, /*pull_first=*/true,
                                     [&] { ++loops_done; });
  }
  tb.run();
  EXPECT_EQ(loops_done, tb.agent_count());

  std::int64_t confirmed = 0;
  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    EXPECT_EQ(tb.agent(i).ops_completed(), kOps) << "agent " << i;
    EXPECT_EQ(tb.agent(i).cache().queued_ops(), 0u) << "agent " << i;
    EXPECT_FALSE(tb.agent(i).cache().op_in_flight()) << "agent " << i;
    confirmed += tb.agent(i).view().confirmed_total();
  }
  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    tb.agent(i).shutdown();
  }
  tb.run();
  EXPECT_EQ(confirmed,
            static_cast<std::int64_t>(tb.agent_count() * kOps));
  EXPECT_EQ(tb.database().total_reserved(), confirmed);
  // Only assert loss actually struck when enough messages flowed for
  // that to be near-certain (strong mode retains exclusivity across
  // back-to-back ops, so small runs send very few messages).
  const auto attempts = tb.fabric().sent_count() +
                        tb.fabric().counters().get("msg.dropped.loss");
  if (c.loss * static_cast<double>(attempts) >= 5.0) {
    EXPECT_GE(tb.fabric().counters().get("msg.dropped.loss"), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Loss, LossyAirlineTest,
    ::testing::Values(LossCase{0.05, core::Mode::kWeak},
                      LossCase{0.20, core::Mode::kWeak},
                      LossCase{0.05, core::Mode::kStrong},
                      LossCase{0.20, core::Mode::kStrong}),
    [](const ::testing::TestParamInfo<LossCase>& info) {
      return std::string(info.param.mode == core::Mode::kWeak ? "Weak"
                                                              : "Strong") +
             "Loss" + std::to_string(static_cast<int>(info.param.loss * 100));
    });

}  // namespace
}  // namespace flecc::airline
