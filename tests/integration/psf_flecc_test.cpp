// End-to-end Figure 1: PSF parses a declarative spec, plans a deployment
// satisfying the client's QoS, the deployer instantiates a *live* travel
// agent through the factory glue, and Flecc keeps it coherent with the
// remote flight database — plus the monitoring module re-validating the
// plan when the environment changes.
#include <gtest/gtest.h>

#include "airline/flight_database.hpp"
#include "airline/psf_glue.hpp"
#include "core/directory_manager.hpp"
#include "net/sim_fabric.hpp"
#include "psf/monitor.hpp"
#include "psf/spec.hpp"
#include "sim/simulator.hpp"

namespace flecc::airline {
namespace {

constexpr const char* kScenario = R"spec(
component air.ReservationSystem
  implements AirlineReservationInterface
  method browse
  method confirmTickets
  data Flights interval 100 104
end

view air.TravelAgent of air.ReservationSystem
  method browse
  method confirmTickets
  data Flights interval 100 104
end

node client domain=3
node internet
node server domain=1
link client internet latency=35ms insecure
link internet server latency=35ms insecure

request client server interface=AirlineReservationInterface max_latency=5ms view=air.TravelAgent
)spec";

TEST(PsfFleccIntegration, PlannedViewIsDeployedAliveAndCoherent) {
  auto spec = psf::parse_spec(kScenario);

  // The plan must satisfy the 5ms budget with a client-side view.
  psf::Planner planner(spec.environment);
  const auto plan = planner.plan(spec.requests[0]);
  ASSERT_TRUE(plan.has_value());
  ASSERT_TRUE(plan->uses_local_view);

  // Build the runtime from the planned environment.
  sim::Simulator simulator;
  net::SimFabric fabric(simulator, spec.environment.topology());

  auto db = FlightDatabase::uniform(100, 5, 50);
  FlightDatabaseAdapter adapter(db);
  const net::Address dir_addr{spec.node_ids.at("server"), 1};
  core::DirectoryManager directory(fabric, dir_addr, adapter);

  psf::Deployer deployer;
  TravelAgentFactoryOptions opts;
  opts.directory = dir_addr;
  opts.flights = {100, 101, 102, 103, 104};
  opts.validity_trigger = "false";
  register_travel_agent_factory(deployer, fabric, opts);

  auto deployment = deployer.deploy(*plan);
  ASSERT_EQ(deployment.size(), 1u);
  auto* instance =
      dynamic_cast<TravelAgentInstance*>(&deployment.instance(0));
  ASSERT_NE(instance, nullptr);
  EXPECT_EQ(instance->node(), spec.node_ids.at("client"));
  EXPECT_TRUE(instance->started());  // deploy() starts instances

  // start() issued initImage; drive the fabric to completion.
  simulator.run();
  TravelAgent& agent = instance->agent();
  ASSERT_TRUE(agent.cache().registered());
  ASSERT_TRUE(agent.cache().valid());
  EXPECT_EQ(agent.view().available(100), 50);

  // The deployed view sells seats; Flecc propagates them to the remote
  // database across the two 35ms hops.
  agent.run_reservation_loop(4, 100, 2, /*pull_first=*/true);
  simulator.run();
  agent.push_now();
  simulator.run();
  EXPECT_EQ(db.find(100)->reserved, 8);

  // The monitoring module accepts the plan (local views tolerate WAN
  // trouble), and watches survive even an uplink outage.
  psf::Monitor monitor(spec.environment);
  int violations = 0;
  monitor.watch(*plan, [&](const psf::DeploymentPlan&, const std::string&) {
    ++violations;
  });
  spec.environment.set_link_up(0, false);  // client uplink down
  EXPECT_EQ(violations, 0);
  spec.environment.set_link_up(0, true);

  // Teardown through the deployment destructor: stop() -> killImage.
  deployment = psf::Deployment{};
  simulator.run();
  EXPECT_EQ(directory.registered_count(), 0u);
}

TEST(PsfFleccIntegration, MultipleAgentsShareANodeViaPortAllocation) {
  auto spec = psf::parse_spec(kScenario);
  sim::Simulator simulator;
  net::SimFabric fabric(simulator, spec.environment.topology());
  auto db = FlightDatabase::uniform(100, 5, 50);
  FlightDatabaseAdapter adapter(db);
  const net::Address dir_addr{spec.node_ids.at("server"), 1};
  core::DirectoryManager directory(fabric, dir_addr, adapter);

  psf::Deployer deployer;
  TravelAgentFactoryOptions opts;
  opts.directory = dir_addr;
  opts.flights = {100};
  register_travel_agent_factory(deployer, fabric, opts);

  // Two placements on the same client node must not collide.
  psf::DeploymentPlan plan;
  plan.placements = {{"air.TravelAgent", spec.node_ids.at("client")},
                     {"air.TravelAgent", spec.node_ids.at("client")}};
  auto deployment = deployer.deploy(plan);
  simulator.run();
  EXPECT_EQ(directory.registered_count(), 2u);
  auto* a = dynamic_cast<TravelAgentInstance*>(&deployment.instance(0));
  auto* b = dynamic_cast<TravelAgentInstance*>(&deployment.instance(1));
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a->agent().cache().address(), b->agent().cache().address());
  EXPECT_TRUE(directory.conflicts(a->agent().cache().id(),
                                  b->agent().cache().id()));
}

}  // namespace
}  // namespace flecc::airline
