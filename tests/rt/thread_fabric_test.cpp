// ThreadFabric tests: the Fabric contract under real threads, and the
// full Flecc protocol running multi-threaded.
#include "rt/thread_fabric.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "../core/test_support.hpp"
#include "core/cache_manager.hpp"
#include "core/directory_manager.hpp"

namespace flecc::rt {
namespace {

struct CountingEndpoint : net::Endpoint {
  std::atomic<int> count{0};
  std::atomic<int> concurrent{0};
  std::atomic<int> max_concurrent{0};
  void on_message(const net::Message&) override {
    const int c = ++concurrent;
    int prev = max_concurrent.load();
    while (c > prev && !max_concurrent.compare_exchange_weak(prev, c)) {
    }
    std::this_thread::sleep_for(std::chrono::microseconds(100));
    ++count;
    --concurrent;
  }
};

TEST(ThreadFabricTest, DeliversMessages) {
  ThreadFabric fabric;
  CountingEndpoint ep;
  fabric.bind(net::Address{0, 1}, ep);
  for (int i = 0; i < 10; ++i) {
    fabric.send(net::Address{0, 2}, net::Address{0, 1}, "t.msg", i, 8);
  }
  fabric.drain();
  EXPECT_EQ(ep.count.load(), 10);
}

TEST(ThreadFabricTest, HandlersNeverRunConcurrentlyPerEndpoint) {
  ThreadFabric fabric;
  CountingEndpoint ep;
  fabric.bind(net::Address{0, 1}, ep);
  // Blast from several sender threads.
  std::vector<std::thread> senders;
  for (int s = 0; s < 4; ++s) {
    senders.emplace_back([&fabric, s] {
      for (int i = 0; i < 25; ++i) {
        fabric.send(net::Address{1, static_cast<net::PortId>(s)},
                    net::Address{0, 1}, "t.blast", i, 8);
      }
    });
  }
  for (auto& t : senders) t.join();
  fabric.drain();
  EXPECT_EQ(ep.count.load(), 100);
  EXPECT_EQ(ep.max_concurrent.load(), 1);  // the Fabric contract
}

TEST(ThreadFabricTest, DistinctEndpointsRunConcurrently) {
  ThreadFabric fabric;
  CountingEndpoint a, b;
  fabric.bind(net::Address{0, 1}, a);
  fabric.bind(net::Address{0, 2}, b);
  for (int i = 0; i < 50; ++i) {
    fabric.send(net::Address{9, 9}, net::Address{0, 1}, "t.a", i, 8);
    fabric.send(net::Address{9, 9}, net::Address{0, 2}, "t.b", i, 8);
  }
  fabric.drain();
  EXPECT_EQ(a.count.load(), 50);
  EXPECT_EQ(b.count.load(), 50);
}

TEST(ThreadFabricTest, UnboundDestinationCounted) {
  ThreadFabric fabric;
  fabric.send(net::Address{0, 1}, net::Address{0, 2}, "t.void", 0, 8);
  fabric.drain();
  EXPECT_EQ(fabric.counters().get("msg.dropped.unbound"), 1u);
}

TEST(ThreadFabricTest, TimersFireAndCancel) {
  ThreadFabric fabric;
  CountingEndpoint ep;
  fabric.bind(net::Address{0, 1}, ep);
  std::atomic<int> fired{0};
  fabric.schedule(net::Address{0, 1}, sim::msec(5), [&] { ++fired; });
  const auto id =
      fabric.schedule(net::Address{0, 1}, sim::msec(200), [&] { ++fired; });
  EXPECT_TRUE(fabric.cancel_timer(id));
  EXPECT_FALSE(fabric.cancel_timer(id));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  fabric.drain();
  EXPECT_EQ(fired.load(), 1);
}

TEST(ThreadFabricTest, NowIsMonotonic) {
  ThreadFabric fabric;
  const auto t0 = fabric.now();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_GT(fabric.now(), t0);
}

TEST(ThreadFabricTest, TopologyDelaysAndDropsApply) {
  ThreadFabric::Config cfg;
  net::Topology topo;
  const auto a = topo.add_node();
  const auto b = topo.add_node();
  const auto isolated = topo.add_node();
  (void)isolated;
  net::LinkSpec link;
  link.latency = sim::msec(15);
  topo.add_link(a, b, link);
  cfg.topology = std::move(topo);
  ThreadFabric fabric(cfg);

  CountingEndpoint ep, lonely;
  fabric.bind(net::Address{b, 1}, ep);
  fabric.bind(net::Address{2, 1}, lonely);

  const auto t0 = fabric.now();
  fabric.send(net::Address{a, 1}, net::Address{b, 1}, "t.routed", 0, 8);
  fabric.send(net::Address{a, 1}, net::Address{2, 1}, "t.unroutable", 0, 8);
  fabric.drain();
  EXPECT_EQ(ep.count.load(), 1);
  EXPECT_GE(fabric.now() - t0, sim::msec(10));
  EXPECT_EQ(lonely.count.load(), 0);
  EXPECT_EQ(fabric.counters().get("msg.dropped.no_route"), 1u);
}

TEST(ThreadFabricTest, MessageDelayApplied) {
  ThreadFabric::Config cfg;
  cfg.message_delay = sim::msec(20);
  ThreadFabric fabric(cfg);
  CountingEndpoint ep;
  fabric.bind(net::Address{0, 1}, ep);
  const auto t0 = fabric.now();
  fabric.send(net::Address{0, 2}, net::Address{0, 1}, "t.slow", 0, 8);
  fabric.drain();
  EXPECT_GE(fabric.now() - t0, sim::msec(15));
  EXPECT_EQ(ep.count.load(), 1);
}

// ---- bounded mailboxes (net/flow.hpp wiring) ------------------------------

/// Holds its mailbox thread hostage on the first "t.block" message until
/// released, so the test can fill the queue behind it deterministically.
struct BlockingEndpoint : net::Endpoint {
  std::atomic<int> bulk{0};
  std::atomic<int> ctrl{0};
  std::atomic<bool> entered{false};
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;

  void on_message(const net::Message& m) override {
    if (m.type == "t.block") {
      entered = true;
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [this] { return release; });
      return;
    }
    if (m.type == "t.bulk") {
      ++bulk;
    } else {
      ++ctrl;
    }
  }

  void unblock() {
    {
      std::lock_guard<std::mutex> lock(mu);
      release = true;
    }
    cv.notify_all();
  }
};

ThreadFabric::Config bounded_config(std::size_t capacity) {
  ThreadFabric::Config cfg;
  cfg.flow.queue_capacity = capacity;
  cfg.flow.is_control = [](std::string_view type) {
    return type != "t.bulk";
  };
  cfg.flow.make_busy = [](const net::Message& shed, sim::Duration) {
    return net::BusyReply{"t.busy", shed.id, 8};
  };
  return cfg;
}

TEST(ThreadFabricFlowTest, FullMailboxNacksInsteadOfGrowing) {
  ThreadFabric fabric(bounded_config(4));
  BlockingEndpoint ep;
  CountingEndpoint sender;
  fabric.bind(net::Address{0, 1}, ep);
  fabric.bind(net::Address{0, 2}, sender);  // where Busy replies land

  fabric.send(net::Address{0, 2}, net::Address{0, 1}, "t.block", 0, 8);
  while (!ep.entered.load()) std::this_thread::yield();

  // The worker is wedged: ten bulk sends meet a capacity-4 queue, so
  // four enqueue and six are refused with a synthesized "t.busy" each.
  for (int i = 0; i < 10; ++i) {
    fabric.send(net::Address{0, 2}, net::Address{0, 1}, "t.bulk", i, 8);
  }
  ep.unblock();
  fabric.drain();

  EXPECT_EQ(ep.bulk.load(), 4);
  EXPECT_EQ(sender.count.load(), 6);  // one Busy per shed message
  EXPECT_EQ(fabric.counters().get("flow.shed"), 6u);
  EXPECT_EQ(fabric.counters().get("flow.shed.t.bulk"), 6u);
  // The bulk queue never grew past its bound (delivered == capacity
  // proves it); the published peak covers every mailbox, including the
  // sender's control-lane Busy replies, so it is bounded, not exact.
  EXPECT_GE(fabric.peak_mailbox_depth(), 4u);
  EXPECT_LE(fabric.peak_mailbox_depth(), 10u);
  EXPECT_EQ(fabric.counters().get("flow.queue.peak"),
            fabric.peak_mailbox_depth());
}

TEST(ThreadFabricFlowTest, ControlLaneBypassesShedBulkTraffic) {
  ThreadFabric fabric(bounded_config(4));
  BlockingEndpoint ep;
  CountingEndpoint sender;
  fabric.bind(net::Address{0, 1}, ep);
  fabric.bind(net::Address{0, 2}, sender);

  fabric.send(net::Address{0, 2}, net::Address{0, 1}, "t.block", 0, 8);
  while (!ep.entered.load()) std::this_thread::yield();

  for (int i = 0; i < 10; ++i) {
    fabric.send(net::Address{0, 2}, net::Address{0, 1}, "t.bulk", i, 8);
  }
  // The bulk lane is latched shut now — control traffic (acks,
  // heartbeats, grants in the real protocol) must still get through.
  for (int i = 0; i < 5; ++i) {
    fabric.send(net::Address{0, 2}, net::Address{0, 1}, "t.ctrl", i, 8);
  }
  ep.unblock();
  fabric.drain();

  EXPECT_EQ(ep.ctrl.load(), 5);  // every control message delivered
  EXPECT_EQ(ep.bulk.load(), 4);
  EXPECT_EQ(fabric.counters().get("flow.shed"), 6u);
  EXPECT_EQ(fabric.counters().get("flow.shed.t.ctrl"), 0u);
}

// ---- the actual protocol over threads ------------------------------------

TEST(ThreadFabricProtocolTest, FleccRunsUnchangedOverThreads) {
  using core::testing::KvPrimary;
  using core::testing::KvView;

  ThreadFabric fabric;
  KvPrimary primary(100);
  const net::Address dir_addr{100, 1};
  core::DirectoryManager directory(fabric, dir_addr, primary);

  constexpr int kAgents = 4;
  constexpr int kOpsEach = 10;
  std::vector<std::unique_ptr<KvView>> views;
  std::vector<std::unique_ptr<core::CacheManager>> cms;
  for (int i = 0; i < kAgents; ++i) {
    views.push_back(std::make_unique<KvView>(0, 9));
    core::CacheManager::Config cfg;
    cfg.view_name = "kv.View";
    cfg.properties = views.back()->properties();
    cfg.mode = core::Mode::kStrong;
    cms.push_back(std::make_unique<core::CacheManager>(
        fabric, net::Address{static_cast<net::NodeId>(i), 1}, dir_addr,
        *views.back(), cfg));
  }

  // Each agent thread performs strong-mode increments via the blocking
  // facade. Every CacheManager call is posted to the manager's own
  // mailbox (the rt threading rule), so the protocol object never sees
  // concurrent calls; exclusivity must serialize the agents without
  // losing updates.
  std::vector<std::thread> workers;
  for (int i = 0; i < kAgents; ++i) {
    workers.emplace_back([&, i] {
      const auto idx = static_cast<size_t>(i);
      const net::Address self = cms[idx]->address();
      for (int op = 0; op < kOpsEach; ++op) {
        wait_for([&](auto done) {
          fabric.post(self, [&, done = std::move(done)] {
            cms[idx]->start_use_image(done);
          });
        });
        wait_for([&](auto done) {
          fabric.post(self, [&, done = std::move(done)] {
            views[idx]->increment(3, 1);
            cms[idx]->end_use_image(true);
            done();
          });
        });
      }
      wait_for([&](auto done) {
        fabric.post(self, [&, done = std::move(done)] {
          cms[idx]->kill_image(done);
        });
      });
    });
  }
  for (auto& w : workers) w.join();
  fabric.drain();

  EXPECT_EQ(primary.cell(3), kAgents * kOpsEach);
  // Tear down the cache managers before the fabric.
  cms.clear();
}

}  // namespace
}  // namespace flecc::rt
