// Extended multi-threaded protocol coverage: weak mode, demand fetches,
// triggers, and fail-safe reconnect, all over rt::ThreadFabric — the
// exact code paths the simulator tests exercise, under real concurrency.
#include <gtest/gtest.h>

#include <thread>

#include "../core/test_support.hpp"
#include "core/cache_manager.hpp"
#include "core/directory_manager.hpp"
#include "rt/thread_fabric.hpp"

namespace flecc::rt {
namespace {

using core::testing::KvPrimary;
using core::testing::KvView;

struct Member {
  std::unique_ptr<KvView> view;
  std::unique_ptr<core::CacheManager> cm;
};

Member make_member(ThreadFabric& fabric, net::Address self,
                   net::Address directory,
                   core::CacheManager::Config cfg = {}) {
  Member m;
  m.view = std::make_unique<KvView>(0, 9);
  cfg.view_name = "kv.View";
  cfg.properties = m.view->properties();
  m.cm = std::make_unique<core::CacheManager>(fabric, self, directory,
                                              *m.view, std::move(cfg));
  return m;
}

/// Post an operation onto the member's mailbox and wait for completion.
template <typename Op>
void call(ThreadFabric& fabric, Member& m, Op op) {
  wait_for([&](auto done) {
    fabric.post(m.cm->address(),
                [&, done = std::move(done)] { op(*m.cm, done); });
  });
}

TEST(ThreadedProtocolTest, WeakModeConservesUnderConcurrency) {
  ThreadFabric fabric;
  KvPrimary primary(100);
  const net::Address dir_addr{100, 1};
  core::DirectoryManager directory(fabric, dir_addr, primary);

  constexpr int kAgents = 4;
  constexpr int kOpsEach = 8;
  std::vector<Member> members;
  for (int i = 0; i < kAgents; ++i) {
    members.push_back(make_member(
        fabric, net::Address{static_cast<net::NodeId>(i), 1}, dir_addr));
  }

  std::vector<std::thread> workers;
  for (int i = 0; i < kAgents; ++i) {
    workers.emplace_back([&, i] {
      Member& m = members[static_cast<size_t>(i)];
      call(fabric, m, [](core::CacheManager& cm, auto done) {
        cm.init_image(done);
      });
      for (int op = 0; op < kOpsEach; ++op) {
        call(fabric, m, [&](core::CacheManager& cm, auto done) {
          cm.start_use_image(done);
        });
        call(fabric, m, [&, i](core::CacheManager& cm, auto done) {
          members[static_cast<size_t>(i)].view->increment(i, 1);
          cm.end_use_image(true);
          done();
        });
        call(fabric, m, [](core::CacheManager& cm, auto done) {
          cm.push_image(done);
        });
      }
      call(fabric, m, [](core::CacheManager& cm, auto done) {
        cm.kill_image(done);
      });
    });
  }
  for (auto& w : workers) w.join();
  fabric.drain();

  for (int i = 0; i < kAgents; ++i) {
    EXPECT_EQ(primary.cell(i), kOpsEach) << "agent " << i;
  }
  EXPECT_EQ(primary.total(), kAgents * kOpsEach);
}

TEST(ThreadedProtocolTest, DemandFetchChasesConcurrentDirtyViews) {
  ThreadFabric fabric;
  KvPrimary primary(100);
  const net::Address dir_addr{100, 1};
  core::DirectoryManager::Config dir_cfg;
  dir_cfg.fetch_timeout = sim::msec(500);
  core::DirectoryManager directory(fabric, dir_addr, primary, dir_cfg);

  Member producer = make_member(fabric, net::Address{0, 1}, dir_addr);
  core::CacheManager::Config cfg;
  cfg.validity_trigger = "false";
  Member consumer =
      make_member(fabric, net::Address{1, 1}, dir_addr, std::move(cfg));

  call(fabric, producer, [](core::CacheManager& cm, auto done) {
    cm.init_image(done);
  });
  call(fabric, consumer, [](core::CacheManager& cm, auto done) {
    cm.init_image(done);
  });

  // Producer mutates locally without pushing.
  call(fabric, producer, [&](core::CacheManager& cm, auto done) {
    cm.start_use_image(done);
  });
  call(fabric, producer, [&](core::CacheManager& cm, auto done) {
    producer.view->increment(5, 3);
    cm.end_use_image(true);
    done();
  });

  // Consumer's fetch-fresh pull must chase the producer's dirty state.
  call(fabric, consumer, [](core::CacheManager& cm, auto done) {
    cm.pull_image(done);
  });
  EXPECT_EQ(consumer.view->base(5), 3);
  EXPECT_EQ(primary.cell(5), 3);
}

TEST(ThreadedProtocolTest, PullTriggersFireOnWallClock) {
  ThreadFabric fabric;
  KvPrimary primary(100);
  const net::Address dir_addr{100, 1};
  core::DirectoryManager directory(fabric, dir_addr, primary);

  core::CacheManager::Config cfg;
  cfg.pull_trigger = "(t > 20)";        // ms since last pull
  cfg.trigger_poll = sim::msec(5);      // wall-clock polling
  Member m = make_member(fabric, net::Address{0, 1}, dir_addr,
                         std::move(cfg));
  call(fabric, m, [](core::CacheManager& cm, auto done) {
    cm.init_image(done);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  fabric.drain();
  EXPECT_GE(m.cm->stats().get("auto.pull"), 2u);
  // Tear down the manager before its timers outlive the fixture.
  call(fabric, m, [](core::CacheManager& cm, auto done) {
    cm.kill_image(done);
  });
}

TEST(ThreadedProtocolTest, ReconnectRecoversOverThreads) {
  ThreadFabric fabric;
  KvPrimary primary(100);
  const net::Address dir_addr{100, 1};
  auto directory = std::make_unique<core::DirectoryManager>(fabric, dir_addr,
                                                            primary);

  Member m = make_member(fabric, net::Address{0, 1}, dir_addr);
  call(fabric, m, [](core::CacheManager& cm, auto done) {
    cm.init_image(done);
  });
  call(fabric, m, [&](core::CacheManager& cm, auto done) {
    cm.start_use_image(done);
  });
  call(fabric, m, [&](core::CacheManager& cm, auto done) {
    m.view->increment(2, 4);
    cm.end_use_image(true);
    done();
  });

  // Directory restart.
  directory.reset();
  fabric.drain();
  directory = std::make_unique<core::DirectoryManager>(fabric, dir_addr,
                                                       primary);

  call(fabric, m, [](core::CacheManager& cm, auto done) {
    cm.reconnect(done);
  });
  EXPECT_TRUE(m.cm->registered());
  EXPECT_EQ(primary.cell(2), 4);  // dirty state survived the crash
  EXPECT_EQ(directory->registered_count(), 1u);
}

}  // namespace
}  // namespace flecc::rt
