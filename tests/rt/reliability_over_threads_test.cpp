// The reliability layer under real concurrency: message loss injected
// into rt::ThreadFabric, recovered by request retransmission and the
// directory's idempotent-replay window. Same invariant as the simulator
// tests — every operation completes and the primary ends up exact.
#include <gtest/gtest.h>

#include <thread>

#include "../core/test_support.hpp"
#include "core/cache_manager.hpp"
#include "core/directory_manager.hpp"
#include "rt/thread_fabric.hpp"

namespace flecc::rt {
namespace {

using core::testing::KvPrimary;
using core::testing::KvView;

struct Member {
  std::unique_ptr<KvView> view;
  std::unique_ptr<core::CacheManager> cm;
};

/// Tight retry cadence: wall-clock timeouts, so keep the test fast.
core::RetryPolicy fast_retry() {
  core::RetryPolicy p;
  p.base_timeout = sim::msec(20);
  p.max_timeout = sim::msec(100);
  p.max_attempts = 8;
  return p;
}

Member make_member(ThreadFabric& fabric, net::Address self,
                   net::Address directory,
                   core::CacheManager::Config cfg = {}) {
  Member m;
  m.view = std::make_unique<KvView>(0, 9);
  cfg.view_name = "kv.View";
  cfg.properties = m.view->properties();
  cfg.retry = fast_retry();
  m.cm = std::make_unique<core::CacheManager>(fabric, self, directory,
                                              *m.view, std::move(cfg));
  return m;
}

template <typename Op>
void call(ThreadFabric& fabric, Member& m, Op op) {
  wait_for([&](auto done) {
    fabric.post(m.cm->address(),
                [&, done = std::move(done)] { op(*m.cm, done); });
  });
}

TEST(ThreadedReliabilityTest, LossyFabricStillConservesEveryUpdate) {
  ThreadFabric::Config fcfg;
  fcfg.loss_probability = 0.10;
  fcfg.loss_seed = 0xabcd;
  ThreadFabric fabric(fcfg);
  KvPrimary primary(100);
  const net::Address dir_addr{100, 1};
  core::DirectoryManager directory(fabric, dir_addr, primary);

  constexpr int kAgents = 3;
  constexpr int kOpsEach = 6;
  std::vector<Member> members;
  for (int i = 0; i < kAgents; ++i) {
    members.push_back(make_member(
        fabric, net::Address{static_cast<net::NodeId>(i), 1}, dir_addr));
  }

  std::vector<std::thread> workers;
  for (int i = 0; i < kAgents; ++i) {
    workers.emplace_back([&, i] {
      Member& m = members[static_cast<size_t>(i)];
      call(fabric, m, [](core::CacheManager& cm, auto done) {
        cm.init_image(done);
      });
      for (int op = 0; op < kOpsEach; ++op) {
        call(fabric, m, [&](core::CacheManager& cm, auto done) {
          cm.start_use_image(done);
        });
        call(fabric, m, [&, i](core::CacheManager& cm, auto done) {
          members[static_cast<size_t>(i)].view->increment(i, 1);
          cm.end_use_image(true);
          done();
        });
        call(fabric, m, [](core::CacheManager& cm, auto done) {
          cm.push_image(done);
        });
      }
      call(fabric, m, [](core::CacheManager& cm, auto done) {
        cm.kill_image(done);
      });
    });
  }
  for (auto& w : workers) w.join();
  fabric.drain();

  // Dropped requests were retransmitted; replayed pushes were answered
  // from the dedup window, never re-merged: the totals are exact.
  for (int i = 0; i < kAgents; ++i) {
    EXPECT_EQ(primary.cell(i), kOpsEach) << "agent " << i;
  }
  EXPECT_EQ(primary.total(), kAgents * kOpsEach);
  EXPECT_EQ(directory.registered_count(), 0u);  // all kills completed
}

TEST(ThreadedReliabilityTest, HeartbeatsDetectDirectoryRestartOverThreads) {
  ThreadFabric fabric;
  KvPrimary primary(100);
  const net::Address dir_addr{100, 1};
  auto directory =
      std::make_unique<core::DirectoryManager>(fabric, dir_addr, primary);

  core::CacheManager::Config cfg;
  cfg.heartbeat_interval = sim::msec(20);
  cfg.heartbeat_miss_limit = 3;
  Member m = make_member(fabric, net::Address{0, 1}, dir_addr,
                         std::move(cfg));
  call(fabric, m, [](core::CacheManager& cm, auto done) {
    cm.init_image(done);
  });
  ASSERT_TRUE(m.cm->registered());

  // Restart the directory with an empty registry: the next heartbeat
  // comes back known=false and the manager re-registers by itself.
  directory.reset();
  fabric.drain();
  directory =
      std::make_unique<core::DirectoryManager>(fabric, dir_addr, primary);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (directory->registered_count() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  fabric.drain();
  EXPECT_EQ(directory->registered_count(), 1u);
  EXPECT_TRUE(m.cm->registered());
  EXPECT_GE(m.cm->stats().get("heartbeat.lost_registration"), 1u);

  call(fabric, m, [](core::CacheManager& cm, auto done) {
    cm.kill_image(done);
  });
}

}  // namespace
}  // namespace flecc::rt
