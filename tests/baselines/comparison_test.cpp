// Cross-protocol scaling properties: the qualitative claims behind
// Figure 4, asserted as invariants over a parameter sweep.
#include <gtest/gtest.h>

#include "airline/testbed.hpp"

namespace flecc::airline {
namespace {

std::uint64_t op_messages(Protocol protocol, std::size_t agents,
                          std::size_t group) {
  TestbedOptions opts;
  opts.n_agents = agents;
  opts.group_size = group;
  opts.capacity = 1 << 20;
  CoherenceTestbed tb(protocol, opts);
  tb.connect_all();
  const auto before = tb.fabric().sent_count();
  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    const auto flight = tb.assignment().agent_flights[i][0];
    tb.client(i).do_operation(
        [&tb, i, flight] { tb.view(i).confirm_tickets(flight, 1); }, {});
  }
  tb.run();
  return tb.fabric().sent_count() - before;
}

class ComparisonTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(ComparisonTest, FleccNeverExceedsMulticast) {
  const auto [agents, group] = GetParam();
  // Flecc only contacts conflicting agents; multicast contacts all —
  // so Flecc's traffic is bounded by multicast's at every sharing level.
  EXPECT_LE(op_messages(Protocol::kFlecc, agents, group),
            op_messages(Protocol::kMulticast, agents, group));
}

TEST_P(ComparisonTest, TimeSharingIsFlatInGroupSize) {
  const auto [agents, group] = GetParam();
  const auto at_g = op_messages(Protocol::kTimeSharing, agents, group);
  const auto at_1 = op_messages(Protocol::kTimeSharing, agents, 1);
  EXPECT_EQ(at_g, at_1);  // token traffic ignores sharing entirely
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ComparisonTest,
    ::testing::Values(std::make_tuple(std::size_t{12}, std::size_t{3}),
                      std::make_tuple(std::size_t{12}, std::size_t{6}),
                      std::make_tuple(std::size_t{12}, std::size_t{12}),
                      std::make_tuple(std::size_t{20}, std::size_t{5})));

TEST(ComparisonShapeTest, FleccGrowsWithSharingMulticastDoesNot) {
  const auto flecc_small = op_messages(Protocol::kFlecc, 20, 2);
  const auto flecc_large = op_messages(Protocol::kFlecc, 20, 20);
  EXPECT_LT(flecc_small, flecc_large);

  const auto mc_small = op_messages(Protocol::kMulticast, 20, 2);
  const auto mc_large = op_messages(Protocol::kMulticast, 20, 20);
  EXPECT_EQ(mc_small, mc_large);
}

TEST(ComparisonShapeTest, FullConflictMakesFleccAndMulticastComparable) {
  // When everyone conflicts with everyone, application awareness buys
  // nothing: both chase the same n-1 agents per operation.
  const auto flecc = op_messages(Protocol::kFlecc, 10, 10);
  const auto mc = op_messages(Protocol::kMulticast, 10, 10);
  EXPECT_EQ(flecc, mc);
}

}  // namespace
}  // namespace flecc::airline
