#include "baselines/multicast.hpp"

#include <gtest/gtest.h>

#include "../core/test_support.hpp"

namespace flecc::baselines {
namespace {

using core::testing::KvPrimary;
using core::testing::KvView;

struct McFixture : ::testing::Test {
  explicit McFixture(std::size_t n = 4) : primary(100) {
    std::vector<net::NodeId> hosts;
    auto topo = net::Topology::lan(n + 1, net::LinkSpec{}, &hosts);
    fabric = std::make_unique<net::SimFabric>(sim, std::move(topo));
    dir_addr = net::Address{hosts[n], 1};
    MulticastDirectory::Config cfg;
    cfg.update_timeout = sim::msec(100);
    dir = std::make_unique<MulticastDirectory>(*fabric, dir_addr, primary,
                                               cfg);
    for (std::size_t i = 0; i < n; ++i) {
      // Mix of overlapping and disjoint data; multicast ignores it all.
      const std::int64_t lo = (i % 2 == 0) ? 0 : 50;
      views.push_back(std::make_unique<KvView>(lo, lo + 9));
      clients.push_back(std::make_unique<MulticastClient>(
          *fabric, net::Address{hosts[i], 1}, dir_addr, *views[i],
          "kv.View", views[i]->properties()));
    }
  }

  sim::Simulator sim;
  std::unique_ptr<net::SimFabric> fabric;
  KvPrimary primary;
  net::Address dir_addr;
  std::unique_ptr<MulticastDirectory> dir;
  std::vector<std::unique_ptr<KvView>> views;
  std::vector<std::unique_ptr<MulticastClient>> clients;
};

TEST_F(McFixture, ConnectRegistersAll) {
  for (auto& c : clients) c->connect({});
  sim.run();
  EXPECT_EQ(dir->registered_count(), 4u);
  for (auto& c : clients) EXPECT_TRUE(c->connected());
}

TEST_F(McFixture, SyncAsksEveryOtherAgent) {
  for (auto& c : clients) c->connect({});
  sim.run();
  const auto before = fabric->counters().get("msg.sent.mc.update_req");
  bool done = false;
  clients[0]->do_operation([] {}, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  // Application-oblivious: all 3 other agents asked, even the two whose
  // data is completely disjoint from client 0's.
  EXPECT_EQ(fabric->counters().get("msg.sent.mc.update_req") - before, 3u);
}

TEST_F(McFixture, DirtyUpdatesAreCollected) {
  for (auto& c : clients) c->connect({});
  sim.run();
  clients[0]->do_operation([this] { views[0]->increment(1, 5); }, {});
  sim.run();
  EXPECT_EQ(primary.cell(1), 0);  // not yet propagated (client-local)
  // Client 2 shares cells [0,9]; its sync gathers client 0's dirty data.
  std::int64_t seen = -1;
  clients[2]->do_operation([this, &seen] { seen = views[2]->base(1); }, {});
  sim.run();
  EXPECT_EQ(seen, 5);
  EXPECT_EQ(primary.cell(1), 5);
}

TEST_F(McFixture, CrashedAgentTimesOut) {
  for (auto& c : clients) c->connect({});
  sim.run();
  fabric->unbind(net::Address{3, 1});  // agent 3 crashes silently
  bool done = false;
  clients[0]->do_operation([] {}, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_GE(dir->stats().get("op.sync.timeout"), 1u);
}

TEST_F(McFixture, LeaveSettlesPendingRounds) {
  for (auto& c : clients) c->connect({});
  sim.run();
  // Make agent 3 permanently busy by unbinding it, then have it "leave"
  // via a direct message while a sync round is waiting on it.
  bool done = false;
  clients[0]->do_operation([] {}, [&] { done = true; });
  clients[3]->disconnect({});
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(dir->registered_count(), 3u);
}

TEST_F(McFixture, DisconnectMergesFinalState) {
  clients[0]->connect({});
  sim.run();
  clients[0]->do_operation([this] { views[0]->increment(4, 2); }, {});
  sim.run();
  bool done = false;
  clients[0]->disconnect([&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(primary.cell(4), 2);
}

TEST_F(McFixture, MessageCountScalesWithFleetSize) {
  for (auto& c : clients) c->connect({});
  sim.run();
  const auto before = fabric->sent_count();
  bool done = false;
  clients[0]->do_operation([] {}, [&] { done = true; });
  sim.run();
  ASSERT_TRUE(done);
  // sync_req + 3*(update_req + update_reply) + sync_reply = 8.
  EXPECT_EQ(fabric->sent_count() - before, 8u);
}

}  // namespace
}  // namespace flecc::baselines
