#include "baselines/time_sharing.hpp"

#include <gtest/gtest.h>

#include "../core/test_support.hpp"

namespace flecc::baselines {
namespace {

using core::testing::KvPrimary;
using core::testing::KvView;

struct TsFixture : ::testing::Test {
  TsFixture() : primary(100) {
    std::vector<net::NodeId> hosts;
    auto topo = net::Topology::lan(4, net::LinkSpec{}, &hosts);
    fabric = std::make_unique<net::SimFabric>(sim, std::move(topo));
    coord_addr = net::Address{hosts[3], 1};
    coord = std::make_unique<TimeSharingCoordinator>(*fabric, coord_addr,
                                                     primary);
    for (std::size_t i = 0; i < 3; ++i) {
      views.push_back(std::make_unique<KvView>(0, 9));
      clients.push_back(std::make_unique<TimeSharingClient>(
          *fabric, net::Address{hosts[i], 1}, coord_addr, *views[i],
          "kv.View", views[i]->properties()));
    }
  }

  sim::Simulator sim;
  std::unique_ptr<net::SimFabric> fabric;
  KvPrimary primary;
  net::Address coord_addr;
  std::unique_ptr<TimeSharingCoordinator> coord;
  std::vector<std::unique_ptr<KvView>> views;
  std::vector<std::unique_ptr<TimeSharingClient>> clients;
};

TEST_F(TsFixture, ConnectRegistersAgents) {
  for (auto& c : clients) c->connect({});
  sim.run();
  EXPECT_EQ(coord->registered_count(), 3u);
  for (auto& c : clients) EXPECT_TRUE(c->connected());
}

TEST_F(TsFixture, OperationsSerializeAndMerge) {
  for (auto& c : clients) c->connect({});
  sim.run();
  int completed = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    clients[i]->do_operation(
        [this, i] { views[i]->increment(static_cast<std::int64_t>(i), 1); },
        [&] { ++completed; });
  }
  sim.run();
  EXPECT_EQ(completed, 3);
  EXPECT_EQ(primary.cell(0), 1);
  EXPECT_EQ(primary.cell(1), 1);
  EXPECT_EQ(primary.cell(2), 1);
  EXPECT_EQ(coord->turns_granted(), 3u);
}

TEST_F(TsFixture, LaterAgentSeesEarlierUpdates) {
  for (auto& c : clients) c->connect({});
  sim.run();
  clients[0]->do_operation([this] { views[0]->increment(5, 7); }, {});
  sim.run();
  std::int64_t seen = -1;
  clients[1]->do_operation([this, &seen] { seen = views[1]->base(5); }, {});
  sim.run();
  EXPECT_EQ(seen, 7);
}

TEST_F(TsFixture, MessageCountPerOperationIsConstant) {
  for (auto& c : clients) c->connect({});
  sim.run();
  const auto before = fabric->sent_count();
  clients[0]->do_operation([] {}, {});
  sim.run();
  const auto per_op = fabric->sent_count() - before;
  EXPECT_EQ(per_op, 3u);  // turn_req + grant + release

  // Still 3 with more contention.
  const auto before2 = fabric->sent_count();
  int completed = 0;
  for (auto& c : clients) {
    c->do_operation([] {}, [&] { ++completed; });
  }
  sim.run();
  EXPECT_EQ(completed, 3);
  EXPECT_EQ(fabric->sent_count() - before2, 9u);
}

TEST_F(TsFixture, HolderBlocksOthersUntilRelease) {
  for (auto& c : clients) c->connect({});
  sim.run();
  // Client 0's work keeps the token by deferring its own completion via
  // a simulated long think inside the turn: we model this by checking
  // the coordinator's grant counter between the two requests.
  bool first_done = false, second_done = false;
  clients[0]->do_operation([] {}, [&] { first_done = true; });
  clients[1]->do_operation([] {}, [&] { second_done = true; });
  sim.run();
  EXPECT_TRUE(first_done);
  EXPECT_TRUE(second_done);
  EXPECT_EQ(coord->turns_granted(), 2u);
}

TEST_F(TsFixture, DisconnectMergesFinalState) {
  clients[0]->connect({});
  sim.run();
  views[0]->increment(2, 3);
  bool done = false;
  clients[0]->disconnect([&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_FALSE(clients[0]->connected());
  EXPECT_EQ(primary.cell(2), 3);
  EXPECT_EQ(coord->registered_count(), 0u);
}

TEST_F(TsFixture, LeaveWhileQueuedIsSkipped) {
  for (auto& c : clients) c->connect({});
  sim.run();
  // Enqueue ops for 0 and 1, then 1 leaves before its turn can be
  // served in the same batch. The coordinator must skip it gracefully.
  clients[0]->do_operation([] {}, {});
  clients[1]->do_operation([] {}, {});
  clients[1]->disconnect({});
  sim.run();
  EXPECT_EQ(coord->registered_count(), 2u);
  // No deadlock: the remaining client can still take turns.
  bool done = false;
  clients[2]->do_operation([] {}, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace flecc::baselines
