#include "baselines/peer_to_peer.hpp"

#include <gtest/gtest.h>

#include "net/sim_fabric.hpp"
#include "sim/simulator.hpp"

namespace flecc::baselines {
namespace {

/// A commutative-counter application: local increments become delta
/// images; applying a delta adds into the shared counters.
class CounterPeerApp : public PeerAdapter {
 public:
  void increment(std::int64_t cell, std::int64_t by = 1) {
    pending_[cell] += by;
    counters_[cell] += by;
  }
  [[nodiscard]] std::int64_t value(std::int64_t cell) const {
    auto it = counters_.find(cell);
    return it == counters_.end() ? 0 : it->second;
  }

  [[nodiscard]] core::ObjectImage extract_update() override {
    core::ObjectImage img;
    for (const auto& [cell, delta] : pending_) {
      if (delta != 0) img.set_int("inc." + std::to_string(cell), delta);
    }
    pending_.clear();
    return img;
  }
  void apply_update(const core::ObjectImage& delta) override {
    for (const auto& [key, value] : delta) {
      if (key.rfind("inc.", 0) != 0) continue;
      if (const auto* iv = std::get_if<std::int64_t>(&value)) {
        counters_[std::stoll(key.substr(4))] += *iv;
      }
    }
  }

 private:
  std::map<std::int64_t, std::int64_t> counters_;
  std::map<std::int64_t, std::int64_t> pending_;
};

props::PropertySet cells(std::int64_t lo, std::int64_t hi) {
  props::PropertySet ps;
  ps.set("Cells", props::Domain::interval(lo, hi));
  return ps;
}

struct P2pFixture : ::testing::Test {
  P2pFixture() {
    std::vector<net::NodeId> hosts;
    auto topo = net::Topology::lan(4, net::LinkSpec{}, &hosts);
    fabric = std::make_unique<net::SimFabric>(sim, std::move(topo));
    // Peers 0 and 1 share [0,9]; peer 2 is disjoint at [50,59].
    const std::int64_t ranges[3][2] = {{0, 9}, {0, 9}, {50, 59}};
    for (int i = 0; i < 3; ++i) {
      apps.push_back(std::make_unique<CounterPeerApp>());
      Peer::Config cfg;
      cfg.name = "peer" + std::to_string(i);
      cfg.properties = cells(ranges[i][0], ranges[i][1]);
      peers.push_back(std::make_unique<Peer>(
          *fabric, net::Address{hosts[static_cast<size_t>(i)], 1},
          *apps.back(), cfg));
    }
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) {
        if (i == j) continue;
        peers[static_cast<size_t>(i)]->add_peer(
            net::Address{hosts[static_cast<size_t>(j)], 1},
            cells(ranges[j][0], ranges[j][1]));
      }
    }
  }

  sim::Simulator sim;
  std::unique_ptr<net::SimFabric> fabric;
  std::vector<std::unique_ptr<CounterPeerApp>> apps;
  std::vector<std::unique_ptr<Peer>> peers;
};

TEST_F(P2pFixture, ConflictFilteringAtWiring) {
  EXPECT_EQ(peers[0]->peer_count(), 2u);
  EXPECT_EQ(peers[0]->conflicting_peer_count(), 1u);  // only peer 1
  EXPECT_EQ(peers[2]->conflicting_peer_count(), 0u);
}

TEST_F(P2pFixture, OperationsExchangeUnseenUpdates) {
  bool done = false;
  peers[0]->do_operation([this] { apps[0]->increment(3, 5); },
                         [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(apps[1]->value(3), 0);  // push-less design: 1 hasn't synced

  // Peer 1's next operation pulls peer 0's update.
  std::int64_t seen = -1;
  peers[1]->do_operation([this, &seen] { seen = apps[1]->value(3); }, {});
  sim.run();
  EXPECT_EQ(seen, 5);
  EXPECT_EQ(apps[1]->value(3), 5);
}

TEST_F(P2pFixture, EntriesApplyExactlyOnce) {
  peers[0]->do_operation([this] { apps[0]->increment(1, 2); }, {});
  sim.run();
  for (int round = 0; round < 4; ++round) {
    peers[1]->do_operation([] {}, {});
    sim.run();
  }
  // Repeated syncs must not re-apply the same log entries.
  EXPECT_EQ(apps[1]->value(1), 2);
  EXPECT_EQ(peers[1]->stats().get("sync.entries_applied"), 1u);
}

TEST_F(P2pFixture, ConcurrentCountersConverge) {
  for (int op = 0; op < 5; ++op) {
    peers[0]->do_operation([this] { apps[0]->increment(7, 1); }, {});
    peers[1]->do_operation([this] { apps[1]->increment(7, 1); }, {});
  }
  sim.run();
  // One more sync each so both have seen everything.
  peers[0]->do_operation([] {}, {});
  peers[1]->do_operation([] {}, {});
  sim.run();
  EXPECT_EQ(apps[0]->value(7), 10);
  EXPECT_EQ(apps[1]->value(7), 10);
}

TEST_F(P2pFixture, DisjointPeersNeverContacted) {
  const auto before = fabric->counters().get("msg.sent.p2p.sync_req");
  peers[2]->do_operation([this] { apps[2]->increment(55, 1); }, {});
  sim.run();
  EXPECT_EQ(fabric->counters().get("msg.sent.p2p.sync_req"), before);
  // And nobody ever asks peer 2 either.
  peers[0]->do_operation([] {}, {});
  sim.run();
  EXPECT_EQ(peers[2]->stats().get("sync.req_served"), 0u);
}

TEST_F(P2pFixture, CrashedPeerTimesOut) {
  fabric->unbind(net::Address{1, 1});  // peer 1 crashes silently
  bool done = false;
  peers[0]->do_operation([] {}, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_GE(peers[0]->stats().get("sync.timeout"), 1u);
}

TEST_F(P2pFixture, OperationsQueueFifo) {
  std::vector<int> order;
  peers[0]->do_operation([&] { order.push_back(1); }, {});
  peers[0]->do_operation([&] { order.push_back(2); }, {});
  peers[0]->do_operation([&] { order.push_back(3); }, {});
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_F(P2pFixture, LogGrowsOnlyOnRealUpdates) {
  peers[0]->do_operation([] {}, {});  // no mutation
  sim.run();
  EXPECT_EQ(peers[0]->log_size(), 0u);
  peers[0]->do_operation([this] { apps[0]->increment(0, 1); }, {});
  sim.run();
  EXPECT_EQ(peers[0]->log_size(), 1u);
}

}  // namespace
}  // namespace flecc::baselines
