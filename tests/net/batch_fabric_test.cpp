#include "net/batch_fabric.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "net/sim_fabric.hpp"
#include "obs/trace.hpp"
#include "obs/trace_io.hpp"
#include "sim/simulator.hpp"

namespace flecc::net {
namespace {

struct Recorder : Endpoint {
  std::vector<Message> received;
  void on_message(const Message& m) override { received.push_back(m); }
};

struct Fixture : ::testing::Test {
  Fixture() {
    std::vector<NodeId> hosts;
    LinkSpec spec;
    spec.latency = 100;
    auto topo = Topology::lan(3, spec, &hosts);
    inner = std::make_unique<SimFabric>(sim, std::move(topo),
                                        SimFabric::Config{});
    BatchFabric::Config cfg;
    cfg.batch_window = 25;
    cfg.max_batch = 16;
    batch = std::make_unique<BatchFabric>(*inner, cfg);
    a1 = Address{hosts[0], 1};
    a2 = Address{hosts[0], 2};
    b1 = Address{hosts[1], 1};
    b2 = Address{hosts[1], 2};
    c1 = Address{hosts[2], 1};
  }

  std::uint64_t ctr(const char* name) {
    return inner->counters().get(name);
  }

  sim::Simulator sim;
  std::unique_ptr<SimFabric> inner;
  std::unique_ptr<BatchFabric> batch;
  Address a1, a2, b1, b2, c1;
};

TEST_F(Fixture, TrainCoalescesIntoOneHopIntact) {
  Recorder rb1, rb2;
  batch->bind(b1, rb1);
  batch->bind(b2, rb2);
  // Three messages, two senders, one destination node: one frame.
  batch->send(a1, b1, "t.push", std::string("p1"), 40);
  batch->send(a2, b1, "t.push", std::string("p2"), 40);
  batch->send(a1, b2, "t.kill", std::string("p3"), 30);
  sim.run();

  ASSERT_EQ(rb1.received.size(), 2u);
  ASSERT_EQ(rb2.received.size(), 1u);
  // Send order within the train is preserved, addressing intact.
  EXPECT_EQ(payload_as<std::string>(rb1.received[0]), "p1");
  EXPECT_EQ(payload_as<std::string>(rb1.received[1]), "p2");
  EXPECT_EQ(rb1.received[0].from, a1);
  EXPECT_EQ(rb1.received[1].from, a2);
  EXPECT_EQ(payload_as<std::string>(rb2.received[0]), "p3");

  // One physical hop carried three sub-messages...
  EXPECT_EQ(inner->sent_count(), 1u);
  EXPECT_EQ(ctr("batch.frames"), 1u);
  EXPECT_EQ(ctr("batch.subs"), 3u);
  EXPECT_EQ(ctr("batch.coalesced"), 2u);
  EXPECT_EQ(ctr("batch.flush.window"), 1u);
  // ...while per-type accounting still counts every message once.
  EXPECT_EQ(ctr("msg.sent.t.push"), 2u);
  EXPECT_EQ(ctr("msg.sent.t.kill"), 1u);
  EXPECT_EQ(ctr("msg.delivered.t.push"), 2u);
  EXPECT_EQ(ctr("msg.delivered.t.kill"), 1u);
}

TEST_F(Fixture, SingleMessageSentUnwrapped) {
  Recorder rb1;
  batch->bind(b1, rb1);
  batch->send(a1, b1, "t.lone", 7, 16);
  sim.run();
  ASSERT_EQ(rb1.received.size(), 1u);
  EXPECT_EQ(payload_as<int>(rb1.received[0]), 7);
  EXPECT_EQ(ctr("batch.frames"), 0u);
  EXPECT_EQ(ctr("batch.flush.single"), 1u);
  // Unwrapped path: the inner fabric counted it as a normal send.
  EXPECT_EQ(ctr("msg.sent.t.lone"), 1u);
  EXPECT_EQ(inner->sent_count(), 1u);
}

TEST_F(Fixture, CapacityFlushesImmediately) {
  BatchFabric::Config cfg;
  cfg.batch_window = 1000000;  // would never fire in this test
  cfg.max_batch = 4;
  BatchFabric tight(*inner, cfg);
  Recorder rb1;
  tight.bind(b1, rb1);
  for (int i = 0; i < 4; ++i) tight.send(a1, b1, "t.burst", i, 8);
  sim.run();
  EXPECT_EQ(rb1.received.size(), 4u);
  EXPECT_EQ(ctr("batch.flush.capacity"), 1u);
  EXPECT_EQ(ctr("batch.frames"), 1u);
  tight.unbind(b1);
}

TEST_F(Fixture, DistinctDestinationsDistinctFrames) {
  Recorder rb1, rc1;
  batch->bind(b1, rb1);
  batch->bind(c1, rc1);
  batch->send(a1, b1, "t.x", 1, 8);
  batch->send(a1, c1, "t.x", 2, 8);
  batch->send(a1, b1, "t.x", 3, 8);
  sim.run();
  EXPECT_EQ(rb1.received.size(), 2u);
  EXPECT_EQ(rc1.received.size(), 1u);
  // node-b train framed, the lone node-c message went unwrapped.
  EXPECT_EQ(ctr("batch.frames"), 1u);
  EXPECT_EQ(ctr("batch.flush.single"), 1u);
}

TEST_F(Fixture, UnboundSubMessageDroppedNotFatal) {
  Recorder rb1;
  batch->bind(b1, rb1);
  batch->send(a1, b1, "t.x", 1, 8);
  batch->send(a1, b2, "t.x", 2, 8);  // b2 never bound
  sim.run();
  EXPECT_EQ(rb1.received.size(), 1u);
  EXPECT_EQ(ctr("batch.sub.unbound"), 1u);
  EXPECT_EQ(ctr("msg.dropped.unbound"), 1u);
}

TEST_F(Fixture, CausalClocksTickAndObservePerSubMessage) {
  if (!obs::kTraceEnabled) GTEST_SKIP() << "built with FLECC_TRACE=OFF";
  obs::CausalClock sender, receiver;
  Recorder rb1;
  batch->bind(b1, rb1);
  batch->set_clock(a1, &sender);
  batch->set_clock(b1, &receiver);
  batch->send(a1, b1, "t.x", 1, 8);
  batch->send(a1, b1, "t.x", 2, 8);
  sim.run();
  ASSERT_EQ(rb1.received.size(), 2u);
  // Each sub-message carries its own monotone stamp, and the receiver
  // observed the newest — identical to the unbatched fabric's behavior.
  EXPECT_GT(rb1.received[0].clock, 0u);
  EXPECT_GT(rb1.received[1].clock, rb1.received[0].clock);
  EXPECT_GT(receiver.value(), rb1.received[1].clock - 1);
  batch->set_clock(a1, nullptr);
  batch->set_clock(b1, nullptr);
}

TEST_F(Fixture, FlushAllDrainsPendingWithoutTimer) {
  BatchFabric::Config cfg;
  cfg.batch_window = 1000000;
  BatchFabric lazy(*inner, cfg);
  Recorder rb1;
  lazy.bind(b1, rb1);
  lazy.send(a1, b1, "t.x", 1, 8);
  lazy.send(a1, b1, "t.x", 2, 8);
  lazy.flush_all();
  sim.run();
  EXPECT_EQ(rb1.received.size(), 2u);
  lazy.unbind(b1);
}

TEST(BatchFabricStandalone, FrameTraceEventsRoundTripThroughTraceIo) {
  // The fabric's obs buffer records drop events; under batching a lost
  // frame is one drop carrying the whole train. That event must survive
  // the JSONL encode/decode unchanged so offline analysis of a batched
  // chaos run keeps working.
  if (!obs::kTraceEnabled) GTEST_SKIP() << "built with FLECC_TRACE=OFF";
  sim::Simulator sim;
  std::vector<NodeId> hosts;
  auto topo = Topology::lan(2, LinkSpec{}, &hosts);
  SimFabric::Config cfg;
  cfg.loss_probability = 1.0;  // every frame is lost
  cfg.seed = 7;
  SimFabric inner(sim, std::move(topo), cfg);
  obs::TraceBuffer buffer(128);
  inner.set_trace_buffer(&buffer);
  BatchFabric batch(inner, BatchFabric::Config{});
  Recorder r;
  const Address src{hosts[0], 1};
  const Address dst{hosts[1], 1};
  batch.bind(dst, r);
  batch.send(src, dst, "t.x", 1, 8);
  batch.send(src, dst, "t.x", 2, 8);
  sim.run();
  EXPECT_TRUE(r.received.empty());
  EXPECT_EQ(inner.counters().get("msg.dropped.loss"), 1u);  // 1 frame

  const auto events = buffer.snapshot();
  ASSERT_FALSE(events.empty());
  for (const auto& e : events) {
    const std::string line = obs::to_jsonl(e);
    const auto back = obs::from_jsonl(line);
    ASSERT_TRUE(back.has_value()) << line;
    EXPECT_EQ(obs::to_jsonl(*back), line);
  }
  batch.unbind(dst);
}

TEST(BatchFabricStandalone, TracingNeverPerturbsBatchedRuns) {
  // Same seed, same sends; one run traced, one not. The batched path
  // must produce identical delivery counts and payload order.
  auto run = [](bool traced, std::vector<int>& out) {
    sim::Simulator sim;
    std::vector<NodeId> hosts;
    auto topo = Topology::lan(2, LinkSpec{}, &hosts);
    SimFabric inner(sim, std::move(topo), SimFabric::Config{});
    obs::TraceBuffer buffer(128);
    if (traced) inner.set_trace_buffer(&buffer);
    BatchFabric batch(inner, BatchFabric::Config{});
    Recorder r;
    const Address src{hosts[0], 1};
    const Address dst{hosts[1], 1};
    batch.bind(dst, r);
    for (int i = 0; i < 9; ++i) batch.send(src, dst, "t.x", i, 8);
    sim.run();
    for (const auto& m : r.received) out.push_back(payload_as<int>(m));
    batch.unbind(dst);
    return inner.sent_count();
  };
  std::vector<int> plain, traced;
  const auto hops_plain = run(false, plain);
  const auto hops_traced = run(true, traced);
  EXPECT_EQ(plain, traced);
  EXPECT_EQ(hops_plain, hops_traced);
  ASSERT_EQ(plain.size(), 9u);
}

}  // namespace
}  // namespace flecc::net
