// Randomized routing properties: Dijkstra's answers cross-checked
// against an independent BFS reachability/Bellman-Ford-style bound.
#include <gtest/gtest.h>

#include <queue>

#include "net/topology.hpp"
#include "sim/rng.hpp"

namespace flecc::net {
namespace {

struct RandomGraph {
  Topology topo;
  std::vector<std::vector<std::pair<NodeId, sim::Duration>>> adj;
};

RandomGraph make_graph(sim::Rng& rng, std::size_t nodes, double edge_prob) {
  RandomGraph g;
  g.adj.resize(nodes);
  for (std::size_t i = 0; i < nodes; ++i) g.topo.add_node();
  for (std::size_t i = 0; i < nodes; ++i) {
    for (std::size_t j = i + 1; j < nodes; ++j) {
      if (!rng.chance(edge_prob)) continue;
      LinkSpec spec;
      spec.latency = rng.uniform_int(1, 1000);
      g.topo.add_link(static_cast<NodeId>(i), static_cast<NodeId>(j), spec);
      g.adj[i].emplace_back(static_cast<NodeId>(j), spec.latency);
      g.adj[j].emplace_back(static_cast<NodeId>(i), spec.latency);
    }
  }
  return g;
}

/// Reference shortest-path (simple Bellman-Ford) for cross-checking.
std::vector<sim::Duration> reference_distances(const RandomGraph& g,
                                               NodeId src) {
  const auto n = g.adj.size();
  std::vector<sim::Duration> dist(n, sim::kTimeInfinity);
  dist[src] = 0;
  for (std::size_t round = 0; round + 1 < n; ++round) {
    bool changed = false;
    for (std::size_t u = 0; u < n; ++u) {
      if (dist[u] == sim::kTimeInfinity) continue;
      for (const auto& [v, w] : g.adj[u]) {
        if (dist[u] + w < dist[v]) {
          dist[v] = dist[u] + w;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  return dist;
}

class RoutingPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoutingPropertyTest, MatchesReferenceShortestPaths) {
  sim::Rng rng(GetParam());
  for (int iter = 0; iter < 10; ++iter) {
    const auto nodes =
        static_cast<std::size_t>(rng.uniform_int(2, 14));
    const auto g = make_graph(rng, nodes, 0.3);
    for (NodeId src = 0; src < nodes; ++src) {
      const auto ref = reference_distances(g, src);
      for (NodeId dst = 0; dst < nodes; ++dst) {
        const auto route = g.topo.route(src, dst);
        if (ref[dst] == sim::kTimeInfinity) {
          EXPECT_FALSE(route.has_value()) << src << "->" << dst;
        } else {
          ASSERT_TRUE(route.has_value()) << src << "->" << dst;
          EXPECT_EQ(route->latency, ref[dst]) << src << "->" << dst;
        }
      }
    }
  }
}

TEST_P(RoutingPropertyTest, RoutesAreConsistentPaths) {
  sim::Rng rng(GetParam() ^ 0xbeef);
  const auto g = make_graph(rng, 12, 0.35);
  for (NodeId src = 0; src < 12; ++src) {
    for (NodeId dst = 0; dst < 12; ++dst) {
      const auto route = g.topo.route(src, dst);
      if (!route.has_value()) continue;
      // Walk the reported links: they must chain src → dst, and their
      // latencies must sum to the reported total.
      NodeId at = src;
      sim::Duration total = 0;
      for (const LinkId link : route->links) {
        const auto [a, b] = g.topo.link_ends(link);
        ASSERT_TRUE(a == at || b == at)
            << "link " << link << " does not touch node " << at;
        at = (a == at) ? b : a;
        total += g.topo.link(link).latency;
      }
      EXPECT_EQ(at, dst);
      EXPECT_EQ(total, route->latency);
    }
  }
}

TEST_P(RoutingPropertyTest, TriangleInequalityHolds) {
  sim::Rng rng(GetParam() ^ 0xcafe);
  const auto g = make_graph(rng, 10, 0.4);
  for (NodeId a = 0; a < 10; ++a) {
    for (NodeId b = 0; b < 10; ++b) {
      for (NodeId c = 0; c < 10; ++c) {
        const auto ab = g.topo.route(a, b);
        const auto bc = g.topo.route(b, c);
        const auto ac = g.topo.route(a, c);
        if (ab.has_value() && bc.has_value()) {
          ASSERT_TRUE(ac.has_value());
          EXPECT_LE(ac->latency, ab->latency + bc->latency);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingPropertyTest,
                         ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace flecc::net
