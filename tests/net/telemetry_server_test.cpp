// TelemetryServer: real loopback sockets. Ephemeral-port binding, the
// routing table, http_get round-trips, 404s, and the serve_telemetry
// wiring that exposes a TelemetryHub's three scrape surfaces.
#include "net/telemetry_server.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "obs/prom.hpp"
#include "obs/telemetry.hpp"
#include "sim/time.hpp"

using flecc::net::HttpResponse;
using flecc::net::TelemetryServer;
using flecc::net::http_get;

TEST(TelemetryServerTest, BindsEphemeralPortAndServesRoute) {
  TelemetryServer server(0);
  ASSERT_TRUE(server.listening());
  ASSERT_NE(server.port(), 0);

  server.route("/ping", [] {
    HttpResponse r;
    r.body = "pong\n";
    return r;
  });
  server.serve_background();

  const auto body = http_get("127.0.0.1", server.port(), "/ping");
  ASSERT_TRUE(body.has_value());
  EXPECT_EQ(*body, "pong\n");
  EXPECT_EQ(server.requests_served(), 1u);
}

TEST(TelemetryServerTest, UnknownPathIs404) {
  TelemetryServer server(0);
  ASSERT_TRUE(server.listening());
  server.route("/known", [] { return HttpResponse{}; });
  server.serve_background();

  // http_get reports non-200 as nullopt.
  EXPECT_FALSE(http_get("127.0.0.1", server.port(), "/missing").has_value());
  EXPECT_TRUE(http_get("127.0.0.1", server.port(), "/known").has_value());
  EXPECT_EQ(server.requests_served(), 2u);
}

TEST(TelemetryServerTest, PollOnceTimesOutQuietly) {
  TelemetryServer server(0);
  ASSERT_TRUE(server.listening());
  EXPECT_FALSE(server.poll_once(/*timeout_ms=*/10));
}

TEST(TelemetryServerTest, StopIsIdempotent) {
  auto server = std::make_unique<TelemetryServer>(0);
  ASSERT_TRUE(server->listening());
  server->serve_background();
  server->stop();
  server->stop();          // second stop: no-op
  server.reset();          // destructor runs stop() again
}

TEST(TelemetryServerTest, ServesHubScrapeSurfaces) {
  flecc::obs::TelemetryHub hub;
  double ops = 0;
  hub.registry().add_collector([&ops](flecc::obs::SampleFrame& f) {
    f.counter("cm.op.total", ops);
    f.gauge("health.dm.down", 0);
  });
  std::string err;
  ASSERT_TRUE(hub.alerts().add_rule("hot: cm.op.total/s > 1000000", &err))
      << err;
  ops = 42;
  hub.tick(flecc::sim::msec(100));

  TelemetryServer server(0);
  ASSERT_TRUE(server.listening());
  flecc::net::serve_telemetry(hub, server);
  server.serve_background();

  const auto metrics = http_get("127.0.0.1", server.port(), "/metrics");
  ASSERT_TRUE(metrics.has_value());
  EXPECT_NE(metrics->find("flecc_cm_op_total"), std::string::npos);
  const auto issues = flecc::obs::prom::validate(*metrics);
  for (const auto& i : issues) ADD_FAILURE() << i.to_string();

  const auto healthz = http_get("127.0.0.1", server.port(), "/healthz");
  ASSERT_TRUE(healthz.has_value());
  EXPECT_NE(healthz->find("\"status\""), std::string::npos);
  EXPECT_NE(healthz->find("ok"), std::string::npos);

  const auto varz = http_get("127.0.0.1", server.port(), "/varz");
  ASSERT_TRUE(varz.has_value());
  EXPECT_NE(varz->find("cm.op.total"), std::string::npos);

  // The index page links the surfaces; the hub counted the scrapes.
  const auto index = http_get("127.0.0.1", server.port(), "/");
  ASSERT_TRUE(index.has_value());
  EXPECT_GE(hub.http_requests(), 4u);
}

TEST(TelemetryServerTest, SecondServerOnSamePortFailsCleanly) {
  TelemetryServer a(0);
  ASSERT_TRUE(a.listening());
  TelemetryServer b(a.port());
  EXPECT_FALSE(b.listening());  // port taken: report, don't crash
}
