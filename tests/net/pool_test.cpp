#include "net/pool.hpp"

#include <gtest/gtest.h>

#include <any>
#include <string>
#include <utility>
#include <vector>

#include "core/object_image.hpp"
#include "net/message.hpp"

namespace flecc::net {
namespace {

struct Payload {
  std::int64_t a = 0;
  std::string s;
  std::vector<int> v;
};

TEST(PoolPtr, AnyStoresHandleInline) {
  // The whole point of the handle: libstdc++'s std::any small-object
  // criteria (pointer-sized, nothrow-movable) must hold, or every send
  // would still box-allocate.
  static_assert(sizeof(PoolPtr<Payload>) == sizeof(void*));
  static_assert(std::is_nothrow_move_constructible_v<PoolPtr<Payload>>);
  static_assert(std::is_nothrow_copy_constructible_v<PoolPtr<Payload>>);
}

TEST(ObjectPool, ReusesSlotAfterRelease) {
  ObjectPool<Payload> pool;
  Payload* first = nullptr;
  {
    PoolPtr<Payload> p = pool.acquire();
    p->a = 7;
    first = p.get();
  }  // released -> freelist
  EXPECT_EQ(pool.free_slots(), 1u);
  PoolPtr<Payload> q = pool.acquire();
  EXPECT_EQ(q.get(), first);  // same slot came back
  const auto st = pool.stats();
  EXPECT_EQ(st.acquired, 2u);
  EXPECT_EQ(st.allocated, 1u);
  EXPECT_EQ(st.reused, 1u);
  EXPECT_EQ(st.recycled, 1u);
}

TEST(ObjectPool, ReuseKeepsContainerCapacity) {
  ObjectPool<Payload> pool;
  std::size_t cap = 0;
  {
    PoolPtr<Payload> p = pool.acquire();
    p->v.assign(100, 1);
    cap = p->v.capacity();
  }
  PoolPtr<Payload> q = pool.acquire();
  // Reuse contract: content unspecified (here: stale), capacity kept.
  EXPECT_GE(q->v.capacity(), cap);
  q->v.assign(50, 2);  // fits in the recycled buffer, no allocation
  EXPECT_GE(q->v.capacity(), cap);
}

TEST(ObjectPool, GrowsGracefullyWhenExhausted) {
  ObjectPool<Payload> pool(/*max_free=*/2);
  std::vector<PoolPtr<Payload>> live;
  for (int i = 0; i < 10; ++i) live.push_back(pool.acquire());
  EXPECT_EQ(pool.stats().allocated, 10u);  // all misses, none failed
  live.clear();
  // Freelist is bounded: 2 recycled, the rest deleted.
  EXPECT_EQ(pool.free_slots(), 2u);
  const auto st = pool.stats();
  EXPECT_EQ(st.recycled, 2u);
  EXPECT_EQ(st.freed, 8u);
}

TEST(ObjectPool, RefcountSharedAcrossAnyCopies) {
  ObjectPool<Payload> pool;
  PoolPtr<Payload> p = pool.acquire();
  p->a = 42;
  std::any boxed(p);           // refs: 2 (dedup-window style copy)
  std::any boxed2 = boxed;     // refs: 3 (replay copy)
  p.reset();                   // refs: 2 -> slot NOT recycled
  EXPECT_EQ(pool.free_slots(), 0u);
  EXPECT_EQ(std::any_cast<PoolPtr<Payload>&>(boxed2)->a, 42);
  boxed.reset();
  boxed2.reset();              // last reference -> recycled
  EXPECT_EQ(pool.free_slots(), 1u);
}

TEST(ObjectPool, OutstandingPtrSurvivesPoolDeath) {
  PoolPtr<Payload> survivor;
  {
    ObjectPool<Payload> pool;
    survivor = pool.acquire();
    survivor->s = "still here";
  }  // pool destroyed with the slot outstanding
  EXPECT_EQ(survivor->s, "still here");
  survivor.reset();  // slot (and the detached core) self-delete
}

TEST(PoolSet, PerTypePoolsAndStats) {
  PoolSet set;
  { auto p = set.acquire<Payload>(); p->a = 1; }
  { auto s = set.acquire<std::string>(); *s = "x"; }
  { auto p = set.acquire<Payload>(); p->a = 2; }
  EXPECT_EQ(set.stats<Payload>().acquired, 2u);
  EXPECT_EQ(set.stats<Payload>().reused, 1u);
  EXPECT_EQ(set.stats<std::string>().acquired, 1u);
  EXPECT_EQ(set.stats<int>().acquired, 0u);  // never created
}

TEST(PayloadAs, ReadsPooledAndBoxedUniformly) {
  PoolSet set;
  auto slot = set.acquire<core::ObjectImage>();
  slot->clear();
  slot->set_int("f.100.free", 5);

  Message pooled;
  pooled.type = "test.image";
  pooled.payload = slot;
  Message boxed;
  boxed.type = "test.image";
  boxed.payload = *slot;  // plain by-value boxing, the legacy path

  EXPECT_EQ(payload_as<core::ObjectImage>(pooled).get_int("f.100.free"), 5);
  EXPECT_EQ(payload_as<core::ObjectImage>(boxed).get_int("f.100.free"), 5);
  EXPECT_THROW(payload_as<std::string>(pooled), std::bad_any_cast);
}

}  // namespace
}  // namespace flecc::net
