#include "net/topology.hpp"

#include <gtest/gtest.h>

namespace flecc::net {
namespace {

TEST(TopologyTest, AddNodesAndLinks) {
  Topology t;
  const NodeId a = t.add_node("a");
  const NodeId b = t.add_node();
  EXPECT_EQ(t.node_count(), 2u);
  EXPECT_EQ(t.node(a).name, "a");
  EXPECT_EQ(t.node(b).name, "node1");
  const LinkId l = t.add_link(a, b);
  EXPECT_EQ(t.link_count(), 1u);
  EXPECT_EQ(t.link_ends(l), std::make_pair(a, b));
}

TEST(TopologyTest, BadLinksRejected) {
  Topology t;
  const NodeId a = t.add_node();
  const NodeId b = t.add_node();
  EXPECT_THROW(t.add_link(a, a), std::invalid_argument);
  EXPECT_THROW(t.add_link(a, 99), std::out_of_range);
  LinkSpec bad;
  bad.latency = -1;
  EXPECT_THROW(t.add_link(a, b, bad), std::invalid_argument);
  bad.latency = 1;
  bad.bandwidth_bytes_per_us = 0.0;
  EXPECT_THROW(t.add_link(a, b, bad), std::invalid_argument);
}

TEST(TopologyTest, RouteToSelfIsEmpty) {
  Topology t;
  const NodeId a = t.add_node();
  const auto r = t.route(a, a);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->links.empty());
  EXPECT_EQ(r->latency, 0);
  EXPECT_TRUE(r->all_secure);
}

TEST(TopologyTest, DisconnectedNodesHaveNoRoute) {
  Topology t;
  const NodeId a = t.add_node();
  const NodeId b = t.add_node();
  EXPECT_FALSE(t.route(a, b).has_value());
}

TEST(TopologyTest, PicksMinimumLatencyPath) {
  // a --(10)-- b --(10)-- d ; a --(50)-- d
  Topology t;
  const NodeId a = t.add_node("a");
  const NodeId b = t.add_node("b");
  const NodeId d = t.add_node("d");
  LinkSpec fast;
  fast.latency = 10;
  LinkSpec slow;
  slow.latency = 50;
  t.add_link(a, b, fast);
  t.add_link(b, d, fast);
  const LinkId direct = t.add_link(a, d, slow);
  const auto r = t.route(a, d);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->latency, 20);
  EXPECT_EQ(r->links.size(), 2u);

  // Make the 2-hop path worse; the direct link must win now.
  t.set_link_latency(r->links[0], 100);
  const auto r2 = t.route(a, d);
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->latency, 50);
  EXPECT_EQ(r2->links, std::vector<LinkId>{direct});
}

TEST(TopologyTest, LinkDownForcesReroute) {
  Topology t;
  const NodeId a = t.add_node();
  const NodeId b = t.add_node();
  const NodeId c = t.add_node();
  LinkSpec fast;
  fast.latency = 5;
  LinkSpec slow;
  slow.latency = 100;
  const LinkId direct = t.add_link(a, c, fast);
  t.add_link(a, b, slow);
  t.add_link(b, c, slow);
  ASSERT_EQ(t.route(a, c)->latency, 5);
  t.set_link_up(direct, false);
  ASSERT_TRUE(t.route(a, c).has_value());
  EXPECT_EQ(t.route(a, c)->latency, 200);
  t.set_link_up(direct, true);
  EXPECT_EQ(t.route(a, c)->latency, 5);
}

TEST(TopologyTest, AllLinksDownMeansNoRoute) {
  Topology t;
  const NodeId a = t.add_node();
  const NodeId b = t.add_node();
  const LinkId l = t.add_link(a, b);
  t.set_link_up(l, false);
  EXPECT_FALSE(t.route(a, b).has_value());
}

TEST(TopologyTest, SecurityAndBottleneckTracked) {
  Topology t;
  const NodeId a = t.add_node();
  const NodeId b = t.add_node();
  const NodeId c = t.add_node();
  LinkSpec l1;
  l1.latency = 10;
  l1.bandwidth_bytes_per_us = 100.0;
  l1.secure = true;
  LinkSpec l2;
  l2.latency = 10;
  l2.bandwidth_bytes_per_us = 10.0;
  l2.secure = false;
  t.add_link(a, b, l1);
  t.add_link(b, c, l2);
  const auto r = t.route(a, c);
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(r->all_secure);
  EXPECT_DOUBLE_EQ(r->min_bandwidth, 10.0);
}

TEST(TopologyTest, TransferDelayAddsTransmission) {
  Route r;
  r.links = {0};
  r.latency = 100;
  r.min_bandwidth = 10.0;  // bytes per us
  EXPECT_EQ(Topology::transfer_delay(r, 1000), 100 + 100);
  // Local (empty) route is free.
  Route local;
  EXPECT_EQ(Topology::transfer_delay(local, 1 << 20), 0);
}

TEST(TopologyTest, SetLinkLatencyValidates) {
  Topology t;
  const NodeId a = t.add_node();
  const NodeId b = t.add_node();
  const LinkId l = t.add_link(a, b);
  EXPECT_THROW(t.set_link_latency(l, -5), std::invalid_argument);
  t.set_link_latency(l, 123);
  EXPECT_EQ(t.link(l).latency, 123);
}

TEST(TopologyTest, LanBuilderConnectsAllPairs) {
  std::vector<NodeId> hosts;
  LinkSpec spec;
  spec.latency = 200;
  const Topology t = Topology::lan(4, spec, &hosts);
  ASSERT_EQ(hosts.size(), 4u);
  EXPECT_EQ(t.node_count(), 5u);  // +1 switch
  for (const NodeId h1 : hosts) {
    for (const NodeId h2 : hosts) {
      if (h1 == h2) continue;
      const auto r = t.route(h1, h2);
      ASSERT_TRUE(r.has_value());
      EXPECT_EQ(r->latency, 200);  // two half-latency hops
    }
  }
}

class LanSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LanSizeTest, EveryHostReachesEveryOther) {
  std::vector<NodeId> hosts;
  const Topology t = Topology::lan(GetParam(), LinkSpec{}, &hosts);
  EXPECT_EQ(hosts.size(), GetParam());
  for (const NodeId h : hosts) {
    EXPECT_TRUE(t.route(h, hosts[0]).has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LanSizeTest,
                         ::testing::Values(1u, 2u, 10u, 101u));

}  // namespace
}  // namespace flecc::net
