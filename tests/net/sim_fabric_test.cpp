#include "net/sim_fabric.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace flecc::net {
namespace {

struct Recorder : Endpoint {
  std::vector<Message> received;
  std::vector<sim::Time> at;
  sim::Simulator* sim = nullptr;
  void on_message(const Message& m) override {
    received.push_back(m);
    if (sim != nullptr) at.push_back(sim->now());
  }
};

struct Fixture : ::testing::Test {
  Fixture() {
    std::vector<NodeId> hosts;
    LinkSpec spec;
    spec.latency = 100;
    spec.bandwidth_bytes_per_us = 1000.0;
    auto topo = Topology::lan(2, spec, &hosts);
    SimFabric::Config cfg;
    cfg.per_message_overhead = 0;
    fabric = std::make_unique<SimFabric>(sim, std::move(topo), cfg);
    a = Address{hosts[0], 1};
    b = Address{hosts[1], 1};
  }

  sim::Simulator sim;
  std::unique_ptr<SimFabric> fabric;
  Address a, b;
};

TEST_F(Fixture, DeliversWithLatency) {
  Recorder rb;
  rb.sim = &sim;
  fabric->bind(b, rb);
  fabric->send(a, b, "test.hello", std::string("payload"), 100);
  sim.run();
  ASSERT_EQ(rb.received.size(), 1u);
  EXPECT_EQ(rb.received[0].type, "test.hello");
  EXPECT_EQ(rb.received[0].from, a);
  EXPECT_EQ(rb.received[0].to, b);
  EXPECT_EQ(payload_as<std::string>(rb.received[0]), "payload");
  // 100us propagation + 100B / 1000B-per-us = 100us + 0us (integer).
  EXPECT_EQ(rb.at[0], 100);
}

TEST_F(Fixture, LocalDeliveryStillAsync) {
  Recorder ra;
  fabric->bind(a, ra);
  const Address a2{a.node, 2};
  fabric->send(a2, a, "test.local", 0, 8);
  EXPECT_TRUE(ra.received.empty());  // not synchronous
  sim.run();
  EXPECT_EQ(ra.received.size(), 1u);
}

TEST_F(Fixture, OrderPreservedBetweenPair) {
  Recorder rb;
  fabric->bind(b, rb);
  for (int i = 0; i < 5; ++i) {
    fabric->send(a, b, "test.seq", i, 10);
  }
  sim.run();
  ASSERT_EQ(rb.received.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(payload_as<int>(rb.received[static_cast<size_t>(i)]), i);
  }
}

TEST_F(Fixture, BiggerMessagesArriveLater) {
  Recorder rb;
  rb.sim = &sim;
  fabric->bind(b, rb);
  fabric->send(a, b, "test.big", 1, 100000);  // 100us tx at 1000 B/us
  fabric->send(a, b, "test.small", 2, 0);
  sim.run();
  ASSERT_EQ(rb.received.size(), 2u);
  EXPECT_EQ(payload_as<int>(rb.received[0]), 2);  // small overtakes
  EXPECT_EQ(payload_as<int>(rb.received[1]), 1);
  EXPECT_EQ(rb.at[1] - rb.at[0], 100);
}

TEST_F(Fixture, UnboundDestinationCounted) {
  fabric->send(a, b, "test.void", 0, 10);
  sim.run();
  EXPECT_EQ(fabric->counters().get("msg.dropped.unbound"), 1u);
  EXPECT_EQ(fabric->delivered_count(), 0u);
  EXPECT_EQ(fabric->sent_count(), 1u);
}

TEST_F(Fixture, UnbindDropsInFlight) {
  Recorder rb;
  fabric->bind(b, rb);
  fabric->send(a, b, "test.x", 0, 10);
  fabric->unbind(b);
  sim.run();
  EXPECT_TRUE(rb.received.empty());
  EXPECT_EQ(fabric->counters().get("msg.dropped.unbound"), 1u);
}

TEST_F(Fixture, DoubleBindThrows) {
  Recorder r1, r2;
  fabric->bind(a, r1);
  EXPECT_THROW(fabric->bind(a, r2), std::logic_error);
}

TEST_F(Fixture, CountersTrackTypesAndBytes) {
  Recorder rb;
  fabric->bind(b, rb);
  fabric->send(a, b, "t.one", 0, 10);
  fabric->send(a, b, "t.one", 0, 30);
  fabric->send(a, b, "t.two", 0, 5);
  sim.run();
  const auto& c = fabric->counters();
  EXPECT_EQ(c.get("msg.sent.t.one"), 2u);
  EXPECT_EQ(c.get("msg.sent.t.two"), 1u);
  EXPECT_EQ(c.get("msg.sent"), 3u);
  EXPECT_EQ(c.get("bytes.sent"), 45u);
  EXPECT_EQ(c.get("msg.delivered"), 3u);
  EXPECT_EQ(fabric->delivered_count(), 3u);
}

TEST_F(Fixture, NoRouteCounted) {
  // An isolated extra node.
  sim::Simulator s2;
  Topology topo;
  const NodeId n0 = topo.add_node();
  const NodeId n1 = topo.add_node();  // never linked
  SimFabric f2(s2, std::move(topo));
  Recorder r;
  f2.bind(Address{n1, 1}, r);
  f2.send(Address{n0, 1}, Address{n1, 1}, "t.x", 0, 1);
  s2.run();
  EXPECT_TRUE(r.received.empty());
  EXPECT_EQ(f2.counters().get("msg.dropped.no_route"), 1u);
}

TEST_F(Fixture, LossInjectionIsDeterministic) {
  Recorder rb;
  fabric->bind(b, rb);
  fabric->set_loss_probability(0.5);
  for (int i = 0; i < 100; ++i) fabric->send(a, b, "t.lossy", i, 1);
  sim.run();
  const auto delivered = rb.received.size();
  EXPECT_GT(delivered, 20u);
  EXPECT_LT(delivered, 80u);
  EXPECT_EQ(fabric->counters().get("msg.dropped.loss"), 100u - delivered);
}

TEST_F(Fixture, TimersFireOnSchedule) {
  int fired = 0;
  fabric->schedule(a, 500, [&] { ++fired; });
  const auto id = fabric->schedule(a, 600, [&] { ++fired; });
  EXPECT_TRUE(fabric->cancel_timer(id));
  sim.run();
  EXPECT_EQ(fired, 1);
  // The cancelled timer never executes; the clock stops at the last
  // executed event.
  EXPECT_EQ(sim.now(), 500);
}

TEST_F(Fixture, TraceRecorderCapturesDeliveries) {
  Recorder rb;
  fabric->bind(b, rb);
  TraceRecorder trace;
  trace.attach(*fabric);
  fabric->send(a, b, "t.traced", 0, 64);
  sim.run();
  ASSERT_EQ(trace.entries().size(), 1u);
  const auto& e = trace.entries()[0];
  EXPECT_EQ(e.type, "t.traced");
  EXPECT_EQ(e.bytes, 64u);
  EXPECT_EQ(e.sent_at, 0);
  EXPECT_GT(e.delivered_at, 0);
  EXPECT_NE(trace.to_string().find("t.traced"), std::string::npos);
}

TEST_F(Fixture, PartitionBlocksCrossTrafficBothWays) {
  Recorder ra, rb;
  fabric->bind(a, ra);
  fabric->bind(b, rb);
  fabric->partition({a}, {b});
  EXPECT_TRUE(fabric->partitioned());

  fabric->send(a, b, "t.ab", 0, 8);
  fabric->send(b, a, "t.ba", 0, 8);
  sim.run();
  EXPECT_TRUE(ra.received.empty());
  EXPECT_TRUE(rb.received.empty());
  EXPECT_EQ(fabric->counters().get("msg.dropped.partition"), 2u);
}

TEST_F(Fixture, PartitionAllowsSameSideTraffic) {
  // Two endpoints on node a's host are on the same side of the cut.
  Recorder ra2;
  const Address a2{a.node, 2};
  fabric->bind(a2, ra2);
  fabric->partition({a}, {b});

  fabric->send(a, a2, "t.same_side", 0, 8);
  sim.run();
  EXPECT_EQ(ra2.received.size(), 1u);
  EXPECT_EQ(fabric->counters().get("msg.dropped.partition"), 0u);
}

TEST_F(Fixture, HealRestoresDelivery) {
  Recorder rb;
  fabric->bind(b, rb);
  fabric->partition({a}, {b});
  fabric->send(a, b, "t.lost", 0, 8);
  sim.run();
  EXPECT_TRUE(rb.received.empty());

  fabric->heal();
  EXPECT_FALSE(fabric->partitioned());
  fabric->send(a, b, "t.after_heal", 0, 8);
  sim.run();
  ASSERT_EQ(rb.received.size(), 1u);
  EXPECT_EQ(rb.received[0].type, "t.after_heal");
}

TEST_F(Fixture, RepartitionReplacesPreviousCut) {
  Recorder ra, rb;
  fabric->bind(a, ra);
  fabric->bind(b, rb);
  fabric->partition({a}, {b});
  // A second call replaces the cut (it does not accumulate).
  fabric->partition({b}, {a});
  fabric->send(a, b, "t.still_cut", 0, 8);
  sim.run();
  EXPECT_TRUE(rb.received.empty());
  EXPECT_EQ(fabric->counters().get("msg.dropped.partition"), 1u);
}

}  // namespace
}  // namespace flecc::net
