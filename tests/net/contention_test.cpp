// Per-link transmission contention (SimFabric::Config::model_contention).
#include <gtest/gtest.h>

#include "net/sim_fabric.hpp"

namespace flecc::net {
namespace {

struct Sink : Endpoint {
  std::vector<sim::Time> arrivals;
  sim::Simulator* sim = nullptr;
  void on_message(const Message&) override { arrivals.push_back(sim->now()); }
};

struct ContentionFixture : ::testing::Test {
  std::unique_ptr<SimFabric> make(bool contention) {
    Topology topo;
    const NodeId a = topo.add_node("a");
    const NodeId b = topo.add_node("b");
    LinkSpec slow;
    slow.latency = 100;
    slow.bandwidth_bytes_per_us = 10.0;  // 1000B message = 100us tx
    topo.add_link(a, b, slow);
    SimFabric::Config cfg;
    cfg.per_message_overhead = 0;
    cfg.model_contention = contention;
    return std::make_unique<SimFabric>(sim, std::move(topo), cfg);
  }

  sim::Simulator sim;
  Address src{0, 1};
  Address dst{1, 1};
};

TEST_F(ContentionFixture, UncontendedModelIgnoresBursts) {
  auto fabric = make(false);
  Sink sink;
  sink.sim = &sim;
  fabric->bind(dst, sink);
  for (int i = 0; i < 5; ++i) {
    fabric->send(src, dst, "t.burst", i, 1000);
  }
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 5u);
  // All delivered at the same instant: tx + propagation, no queueing.
  for (const auto at : sink.arrivals) EXPECT_EQ(at, 200);
  EXPECT_EQ(fabric->counters().get("msg.queued"), 0u);
}

TEST_F(ContentionFixture, ContendedBurstSerializesOnTheLink) {
  auto fabric = make(true);
  Sink sink;
  sink.sim = &sim;
  fabric->bind(dst, sink);
  for (int i = 0; i < 5; ++i) {
    fabric->send(src, dst, "t.burst", i, 1000);
  }
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 5u);
  // Each 1000B message holds the link for 100us; propagation is 100us:
  // arrivals at 200, 300, 400, 500, 600.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(sink.arrivals[static_cast<size_t>(i)], 200 + 100 * i);
  }
  EXPECT_EQ(fabric->counters().get("msg.queued"), 4u);
}

TEST_F(ContentionFixture, SpacedTrafficSeesNoQueueing) {
  auto fabric = make(true);
  Sink sink;
  sink.sim = &sim;
  fabric->bind(dst, sink);
  // One message every 500us; the link frees up after 100us each time.
  for (int i = 0; i < 3; ++i) {
    sim.schedule_at(i * 500, [&, i] {
      fabric->send(src, dst, "t.spaced", i, 1000);
    });
  }
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(sink.arrivals[static_cast<size_t>(i)], i * 500 + 200);
  }
  EXPECT_EQ(fabric->counters().get("msg.queued"), 0u);
}

TEST_F(ContentionFixture, SmallControlMessagesBarelyQueue) {
  auto fabric = make(true);
  Sink sink;
  sink.sim = &sim;
  fabric->bind(dst, sink);
  for (int i = 0; i < 10; ++i) {
    fabric->send(src, dst, "t.small", i, 10);  // 1us tx each
  }
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 10u);
  // Serialization cost is 1us per message, dwarfed by propagation.
  EXPECT_EQ(sink.arrivals.front(), 101);
  EXPECT_EQ(sink.arrivals.back(), 110);
}

}  // namespace
}  // namespace flecc::net
