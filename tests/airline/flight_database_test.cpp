#include "airline/flight_database.hpp"

#include <gtest/gtest.h>

namespace flecc::airline {
namespace {

TEST(FlightDatabaseTest, UniformBuilder) {
  const auto db = FlightDatabase::uniform(100, 5, 50, 99.0);
  EXPECT_EQ(db.size(), 5u);
  const Flight* f = db.find(102);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->capacity, 50);
  EXPECT_EQ(f->reserved, 0);
  EXPECT_DOUBLE_EQ(f->price, 99.0);
  EXPECT_EQ(db.find(105), nullptr);
  EXPECT_EQ(db.flight_numbers(),
            (std::vector<FlightNumber>{100, 101, 102, 103, 104}));
}

TEST(FlightDatabaseTest, AddFlightValidates) {
  FlightDatabase db;
  Flight bad;
  bad.number = 1;
  bad.capacity = 10;
  bad.reserved = 11;
  EXPECT_THROW(db.add_flight(bad), std::invalid_argument);
  bad.reserved = -1;
  EXPECT_THROW(db.add_flight(bad), std::invalid_argument);
}

TEST(FlightDatabaseTest, ReserveClampsAtCapacity) {
  auto db = FlightDatabase::uniform(1, 1, 10);
  EXPECT_EQ(db.reserve(1, 6), 6);
  EXPECT_EQ(db.reserve(1, 6), 4);  // only 4 left
  EXPECT_EQ(db.reserve(1, 1), 0);
  EXPECT_EQ(db.available(1), 0);
  EXPECT_EQ(db.rejected_seats(), 3u);  // 2 + 1 spilled
  EXPECT_EQ(db.total_reserved(), 10);
}

TEST(FlightDatabaseTest, ReserveUnknownFlightOrNonPositive) {
  auto db = FlightDatabase::uniform(1, 1, 10);
  EXPECT_EQ(db.reserve(99, 5), 0);
  EXPECT_EQ(db.reserve(1, 0), 0);
  EXPECT_EQ(db.reserve(1, -3), 0);
  EXPECT_EQ(db.total_reserved(), 0);
}

TEST(FlightDatabaseTest, RaiseReservedIsMonotoneAndClamped) {
  auto db = FlightDatabase::uniform(1, 1, 10);
  db.reserve(1, 4);
  EXPECT_TRUE(db.raise_reserved(1, 2));  // lower: no effect
  EXPECT_EQ(db.find(1)->reserved, 4);
  EXPECT_TRUE(db.raise_reserved(1, 7));
  EXPECT_EQ(db.find(1)->reserved, 7);
  EXPECT_TRUE(db.raise_reserved(1, 99));  // clamped at capacity
  EXPECT_EQ(db.find(1)->reserved, 10);
  EXPECT_FALSE(db.raise_reserved(42, 1));
}

TEST(FlightDatabaseAdapterTest, DataPropertiesListAllFlights) {
  auto db = FlightDatabase::uniform(10, 3, 5);
  FlightDatabaseAdapter adapter(db);
  const auto props = adapter.data_properties();
  const props::Domain* d = props.find(kFlightsProperty);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->size(), 3u);
  EXPECT_TRUE(d->contains(props::Value{std::int64_t{11}}));
  EXPECT_FALSE(d->contains(props::Value{std::int64_t{13}}));
}

TEST(FlightDatabaseAdapterTest, ExtractHonorsScope) {
  auto db = FlightDatabase::uniform(10, 4, 5);
  db.reserve(11, 2);
  FlightDatabaseAdapter adapter(db);
  props::PropertySet scope;
  scope.set(kFlightsProperty, props::Domain::discrete(
                                  {props::Value{std::int64_t{11}}}));
  const auto img = adapter.extract_from_object(scope);
  EXPECT_EQ(img.get_int(key_reserved(11)), 2);
  EXPECT_EQ(img.get_int(key_capacity(11)), 5);
  EXPECT_FALSE(img.has(key_reserved(10)));
  EXPECT_EQ(img.size(), 2u);
}

TEST(FlightDatabaseAdapterTest, ExtractWithEmptyScopeShipsEverything) {
  auto db = FlightDatabase::uniform(10, 2, 5);
  FlightDatabaseAdapter adapter(db);
  const auto img = adapter.extract_from_object(props::PropertySet{});
  EXPECT_EQ(img.size(), 4u);  // cap+res for 2 flights
}

TEST(FlightDatabaseAdapterTest, MergeAppliesDeltasWithinScope) {
  auto db = FlightDatabase::uniform(10, 2, 5);
  FlightDatabaseAdapter adapter(db);
  props::PropertySet scope;
  scope.set(kFlightsProperty, props::Domain::discrete(
                                  {props::Value{std::int64_t{10}}}));
  core::ObjectImage img;
  img.set_int(key_delta(10), 3);
  img.set_int(key_delta(11), 3);  // out of scope: must be ignored
  adapter.merge_into_object(img, scope);
  EXPECT_EQ(db.find(10)->reserved, 3);
  EXPECT_EQ(db.find(11)->reserved, 0);
}

TEST(FlightDatabaseAdapterTest, MergeAppliesMonotoneAbsoluteState) {
  auto db = FlightDatabase::uniform(10, 1, 5);
  FlightDatabaseAdapter adapter(db);
  core::ObjectImage img;
  img.set_int(key_reserved(10), 4);
  adapter.merge_into_object(img, props::PropertySet{});
  EXPECT_EQ(db.find(10)->reserved, 4);
  img.set_int(key_reserved(10), 2);  // lower: ignored (monotone)
  adapter.merge_into_object(img, props::PropertySet{});
  EXPECT_EQ(db.find(10)->reserved, 4);
}

TEST(FlightDatabaseAdapterTest, MergeIgnoresCapacityWritesAndJunk) {
  auto db = FlightDatabase::uniform(10, 1, 5);
  FlightDatabaseAdapter adapter(db);
  core::ObjectImage img;
  img.set_int(key_capacity(10), 999);
  img.set_str("d.10", "not a number");
  img.set_int("unrelated.key", 7);
  img.set_int("f.10.bogus", 7);
  img.set_int("d.", 7);
  adapter.merge_into_object(img, props::PropertySet{});
  EXPECT_EQ(db.find(10)->capacity, 5);
  EXPECT_EQ(db.find(10)->reserved, 0);
}

TEST(FlightDatabaseAdapterTest, ValidityEnvExposesMetadata) {
  auto db = FlightDatabase::uniform(10, 2, 5);
  db.reserve(10, 3);
  FlightDatabaseAdapter adapter(db);
  const trigger::Env* env = adapter.variables();
  ASSERT_NE(env, nullptr);
  EXPECT_DOUBLE_EQ(*env->lookup("_total_reserved"), 3.0);
  EXPECT_DOUBLE_EQ(*env->lookup("avail.10"), 2.0);
  EXPECT_DOUBLE_EQ(*env->lookup("avail.11"), 5.0);
  EXPECT_FALSE(env->lookup("avail.xyz").has_value());
  EXPECT_FALSE(env->lookup("unknown").has_value());
}

}  // namespace
}  // namespace flecc::airline
