#include "airline/travel_agent_view.hpp"

#include <gtest/gtest.h>

namespace flecc::airline {
namespace {

core::ObjectImage seat_state(FlightNumber n, std::int64_t cap,
                             std::int64_t res) {
  core::ObjectImage img;
  img.set_int(key_capacity(n), cap);
  img.set_int(key_reserved(n), res);
  return img;
}

TEST(TravelAgentViewTest, PropertiesListServedFlights) {
  TravelAgentView v({100, 101});
  const auto ps = v.properties();
  const props::Domain* d = ps.find(kFlightsProperty);
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->contains(props::Value{std::int64_t{100}}));
  EXPECT_FALSE(d->contains(props::Value{std::int64_t{102}}));
}

TEST(TravelAgentViewTest, ConfirmAgainstBelievedAvailability) {
  TravelAgentView v({100});
  v.merge_into_view(seat_state(100, 10, 4), v.properties());
  EXPECT_EQ(v.available(100), 6);
  EXPECT_EQ(v.confirm_tickets(100, 4), 4);
  EXPECT_EQ(v.available(100), 2);       // pending counted
  EXPECT_EQ(v.confirm_tickets(100, 4), 2);  // clamp to belief
  EXPECT_EQ(v.confirm_tickets(100, 1), 0);
  EXPECT_EQ(v.confirmed_total(), 6);
  EXPECT_EQ(v.refused_total(), 3);
  EXPECT_EQ(v.pending_total(), 6);
}

TEST(TravelAgentViewTest, UnknownFlightRefused) {
  TravelAgentView v({100});
  EXPECT_EQ(v.confirm_tickets(999, 2), 0);
  EXPECT_EQ(v.refused_total(), 2);
  EXPECT_EQ(v.available(999), 0);
}

TEST(TravelAgentViewTest, ExtractMovesPendingDeltas) {
  TravelAgentView v({100, 101});
  v.merge_into_view(seat_state(100, 10, 0), v.properties());
  v.merge_into_view(seat_state(101, 10, 0), v.properties());
  v.confirm_tickets(100, 2);
  v.confirm_tickets(101, 1);
  const auto img = v.extract_from_view(v.properties());
  EXPECT_EQ(img.get_int(key_delta(100)), 2);
  EXPECT_EQ(img.get_int(key_delta(101)), 1);
  EXPECT_EQ(v.pending_total(), 0);  // ownership transferred
  // A second extract is empty (no duplicated deltas).
  EXPECT_TRUE(v.extract_from_view(v.properties()).empty());
}

TEST(TravelAgentViewTest, ExtractHonorsScope) {
  TravelAgentView v({100, 101});
  v.merge_into_view(seat_state(100, 10, 0), v.properties());
  v.merge_into_view(seat_state(101, 10, 0), v.properties());
  v.confirm_tickets(100, 2);
  v.confirm_tickets(101, 3);
  props::PropertySet narrow;
  narrow.set(kFlightsProperty,
             props::Domain::discrete({props::Value{std::int64_t{100}}}));
  const auto img = v.extract_from_view(narrow);
  EXPECT_TRUE(img.has(key_delta(100)));
  EXPECT_FALSE(img.has(key_delta(101)));
  EXPECT_EQ(v.pending_total(), 3);  // 101's delta stays pending
}

TEST(TravelAgentViewTest, MergePreservesPendingWork) {
  TravelAgentView v({100});
  v.merge_into_view(seat_state(100, 10, 0), v.properties());
  v.confirm_tickets(100, 2);
  // Fresh primary state arrives mid-flight; pending local sales survive.
  v.merge_into_view(seat_state(100, 10, 5), v.properties());
  EXPECT_EQ(v.base_reserved(100), 5);
  EXPECT_EQ(v.pending_total(), 2);
  EXPECT_EQ(v.available(100), 3);  // 10 - 5 - 2
}

TEST(TravelAgentViewTest, MergeIgnoresForeignFlights) {
  TravelAgentView v({100});
  v.merge_into_view(seat_state(555, 10, 5), v.properties());
  EXPECT_EQ(v.base_reserved(555), 0);
  EXPECT_EQ(v.available(555), 0);
}

TEST(TravelAgentViewTest, VariablesTrackSales) {
  TravelAgentView v({100});
  v.merge_into_view(seat_state(100, 10, 0), v.properties());
  const trigger::Env& env = v.variables();
  EXPECT_DOUBLE_EQ(*env.lookup("pendingSales"), 0.0);
  v.confirm_tickets(100, 3);
  EXPECT_DOUBLE_EQ(*env.lookup("pendingSales"), 3.0);
  EXPECT_DOUBLE_EQ(*env.lookup("confirmedSales"), 3.0);
  (void)v.extract_from_view(v.properties());
  EXPECT_DOUBLE_EQ(*env.lookup("pendingSales"), 0.0);
  EXPECT_DOUBLE_EQ(*env.lookup("confirmedSales"), 3.0);
}

TEST(TravelAgentViewTest, CancelVoidsPendingSales) {
  TravelAgentView v({100});
  v.merge_into_view(seat_state(100, 10, 0), v.properties());
  v.confirm_tickets(100, 5);
  EXPECT_EQ(v.cancel_tickets(100, 2), 2);
  EXPECT_EQ(v.pending_total(), 3);
  EXPECT_EQ(v.cancelled_total(), 2);
  EXPECT_EQ(v.net_sold(), 3);
  EXPECT_EQ(v.available(100), 7);  // two seats back on the shelf
  // The extracted delta reflects the net sale only.
  const auto img = v.extract_from_view(v.properties());
  EXPECT_EQ(img.get_int(key_delta(100)), 3);
}

TEST(TravelAgentViewTest, CancelClampsToPending) {
  TravelAgentView v({100});
  v.merge_into_view(seat_state(100, 10, 0), v.properties());
  v.confirm_tickets(100, 2);
  EXPECT_EQ(v.cancel_tickets(100, 5), 2);  // only 2 were pending
  EXPECT_EQ(v.pending_total(), 0);
  EXPECT_TRUE(v.extract_from_view(v.properties()).empty());
  // Nothing pending: further cancels are refused locally.
  EXPECT_EQ(v.cancel_tickets(100, 1), 0);
  EXPECT_EQ(v.cancel_tickets(100, -1), 0);
  EXPECT_EQ(v.cancel_tickets(999, 1), 0);
}

TEST(TravelAgentViewTest, CancelUpdatesVariables) {
  TravelAgentView v({100});
  v.merge_into_view(seat_state(100, 10, 0), v.properties());
  v.confirm_tickets(100, 4);
  v.cancel_tickets(100, 1);
  EXPECT_DOUBLE_EQ(*v.variables().lookup("pendingSales"), 3.0);
  EXPECT_DOUBLE_EQ(*v.variables().lookup("cancelledSales"), 1.0);
}

TEST(TravelAgentViewTest, NonPositiveConfirmIsNoop) {
  TravelAgentView v({100});
  v.merge_into_view(seat_state(100, 10, 0), v.properties());
  EXPECT_EQ(v.confirm_tickets(100, 0), 0);
  EXPECT_EQ(v.confirm_tickets(100, -5), 0);
  EXPECT_EQ(v.pending_total(), 0);
  EXPECT_EQ(v.refused_total(), 0);
}

}  // namespace
}  // namespace flecc::airline
