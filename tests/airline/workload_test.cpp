#include "airline/workload.hpp"

#include <gtest/gtest.h>

#include "airline/travel_agent_view.hpp"

namespace flecc::airline {
namespace {

TEST(WorkloadTest, PartitionsIntoGroups) {
  const auto ga = assign_flight_groups(10, 5, 3, 100);
  EXPECT_EQ(ga.group_count, 2u);
  EXPECT_EQ(ga.flight_count, 6u);
  ASSERT_EQ(ga.agent_flights.size(), 10u);
  // Agents 0-4 share one flight list; 5-9 another.
  EXPECT_EQ(ga.agent_flights[0], ga.agent_flights[4]);
  EXPECT_EQ(ga.agent_flights[5], ga.agent_flights[9]);
  EXPECT_NE(ga.agent_flights[0], ga.agent_flights[5]);
  EXPECT_EQ(ga.agent_group[4], 0u);
  EXPECT_EQ(ga.agent_group[5], 1u);
}

TEST(WorkloadTest, UnevenLastGroup) {
  const auto ga = assign_flight_groups(7, 3, 2, 0);
  EXPECT_EQ(ga.group_count, 3u);
  EXPECT_EQ(ga.agent_group[6], 2u);
  EXPECT_EQ(ga.agent_flights[6], (std::vector<FlightNumber>{4, 5}));
}

TEST(WorkloadTest, BadArgumentsThrow) {
  EXPECT_THROW(assign_flight_groups(10, 0, 1), std::invalid_argument);
  EXPECT_THROW(assign_flight_groups(10, 1, 0), std::invalid_argument);
}

TEST(WorkloadTest, ZeroAgents) {
  const auto ga = assign_flight_groups(0, 5, 3);
  EXPECT_TRUE(ga.agent_flights.empty());
  EXPECT_EQ(ga.group_count, 0u);
  EXPECT_EQ(ga.flight_count, 0u);
}

class GroupConflictTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(GroupConflictTest, SameGroupConflictsDifferentGroupsDoNot) {
  const auto [n_agents, group_size] = GetParam();
  const auto ga = assign_flight_groups(n_agents, group_size, 4, 100);
  std::vector<TravelAgentView> views;
  views.reserve(n_agents);
  for (const auto& flights : ga.agent_flights) views.emplace_back(flights);

  for (std::size_t i = 0; i < n_agents; ++i) {
    for (std::size_t j = i + 1; j < n_agents; ++j) {
      const bool same_group = ga.agent_group[i] == ga.agent_group[j];
      // dynConfl (Definition 1) must coincide with group membership.
      EXPECT_EQ(views[i].properties().conflicts_with(views[j].properties()),
                same_group)
          << "agents " << i << " and " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GroupConflictTest,
    ::testing::Values(std::make_tuple(std::size_t{10}, std::size_t{10}),
                      std::make_tuple(std::size_t{10}, std::size_t{2}),
                      std::make_tuple(std::size_t{12}, std::size_t{5}),
                      std::make_tuple(std::size_t{20}, std::size_t{1})));

}  // namespace
}  // namespace flecc::airline
