#include "airline/reservation_client.hpp"

#include <gtest/gtest.h>

#include "airline/testbed.hpp"

namespace flecc::airline {
namespace {

struct ClientFixture : ::testing::Test {
  ClientFixture() {
    TestbedOptions opts;
    opts.n_agents = 3;
    opts.group_size = 3;
    opts.capacity = 50;
    opts.validity_trigger = "false";
    opts.dir_cfg.use_rw_semantics = true;
    tb = std::make_unique<FleccTestbed>(opts);
    tb->init_all_agents();
    flight = tb->assignment().agent_flights[0][0];
  }

  std::unique_ptr<FleccTestbed> tb;
  FlightNumber flight = 0;
};

TEST_F(ClientFixture, ViewerOnlyBrowsesAndBuysNothing) {
  ReservationClient::Config cfg;
  cfg.kind = ClientKind::kViewer;
  cfg.flight = flight;
  cfg.requests = 5;
  ReservationClient viewer(tb->agent(0), cfg);
  bool done = false;
  viewer.run([&] { done = true; });
  tb->run();
  EXPECT_TRUE(done);
  EXPECT_EQ(viewer.browses(), 5u);
  EXPECT_EQ(viewer.purchase_attempts(), 0u);
  EXPECT_EQ(viewer.seats_bought(), 0);
  EXPECT_EQ(viewer.last_observed_availability(), 50);
  EXPECT_EQ(tb->database().total_reserved(), 0);
}

TEST_F(ClientFixture, BuyerPurchasesReachTheDatabase) {
  ReservationClient::Config cfg;
  cfg.kind = ClientKind::kBuyer;
  cfg.flight = flight;
  cfg.requests = 4;
  cfg.seats_per_purchase = 2;
  cfg.buy_in_strong_mode = false;  // weak + fetch-fresh pulls
  ReservationClient buyer(tb->agent(0), cfg);
  buyer.run();
  tb->run();
  tb->agent(0).shutdown();
  tb->run();
  EXPECT_EQ(buyer.purchase_attempts(), 4u);
  EXPECT_EQ(buyer.seats_bought(), 8);
  EXPECT_EQ(buyer.refused_purchases(), 0u);
  EXPECT_EQ(tb->database().find(flight)->reserved, 8);
}

TEST_F(ClientFixture, ViewerUpgradesToBuyerMidRun) {
  ReservationClient::Config cfg;
  cfg.kind = ClientKind::kViewer;
  cfg.flight = flight;
  cfg.requests = 6;
  cfg.upgrade_at = 3;  // 3 browses, then buy
  ReservationClient client(tb->agent(0), cfg);
  bool done = false;
  client.run([&] { done = true; });
  tb->run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(client.upgraded());
  EXPECT_EQ(client.kind(), ClientKind::kBuyer);
  EXPECT_EQ(client.browses(), 3u);
  EXPECT_EQ(client.purchase_attempts(), 3u);
  EXPECT_EQ(client.seats_bought(), 3);
  // The upgrade switched the agent to strong mode at run time.
  EXPECT_EQ(tb->agent(0).cache().mode(), core::Mode::kStrong);
}

TEST_F(ClientFixture, BuyerRefusalsWhenSoldOut) {
  // Another agent sells out the flight first.
  for (int i = 0; i < 50; ++i) {
    tb->agent(1).view().confirm_tickets(flight, 1);
  }
  tb->agent(1).push_now();
  tb->run();

  ReservationClient::Config cfg;
  cfg.kind = ClientKind::kBuyer;
  cfg.flight = flight;
  cfg.requests = 2;
  cfg.buy_in_strong_mode = true;
  ReservationClient buyer(tb->agent(0), cfg);
  buyer.run();
  tb->run();
  // Strong-mode purchases saw the true (sold-out) seat state.
  EXPECT_EQ(buyer.seats_bought(), 0);
  EXPECT_EQ(buyer.refused_purchases(), 2u);
  EXPECT_EQ(tb->database().find(flight)->reserved, 50);
}

TEST_F(ClientFixture, ViewersAreCheaperThanBuyers) {
  // With the read/write-semantics extension on, a browsing client
  // generates strictly fewer messages than a buying client issuing the
  // same number of requests (no demand-fetch rounds, no acquires).
  const auto before_viewer = tb->fabric().sent_count();
  ReservationClient::Config vcfg;
  vcfg.kind = ClientKind::kViewer;
  vcfg.flight = flight;
  vcfg.requests = 5;
  ReservationClient viewer(tb->agent(0), vcfg);
  viewer.run();
  tb->run();
  const auto viewer_msgs = tb->fabric().sent_count() - before_viewer;

  const auto before_buyer = tb->fabric().sent_count();
  ReservationClient::Config bcfg;
  bcfg.kind = ClientKind::kBuyer;
  bcfg.flight = flight;
  bcfg.requests = 5;
  bcfg.buy_in_strong_mode = false;
  ReservationClient buyer(tb->agent(1), bcfg);
  buyer.run();
  tb->run();
  const auto buyer_msgs = tb->fabric().sent_count() - before_buyer;

  EXPECT_LT(viewer_msgs, buyer_msgs);
}

TEST_F(ClientFixture, RunTwiceThrows) {
  ReservationClient::Config cfg;
  cfg.flight = flight;
  cfg.requests = 1;
  ReservationClient client(tb->agent(0), cfg);
  client.run();
  EXPECT_THROW(client.run(), std::logic_error);
  tb->run();
}

TEST(ClientKindTest, Names) {
  EXPECT_STREQ(to_string(ClientKind::kViewer), "viewer");
  EXPECT_STREQ(to_string(ClientKind::kBuyer), "buyer");
}

}  // namespace
}  // namespace flecc::airline
