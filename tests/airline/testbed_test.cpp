#include "airline/testbed.hpp"

#include <gtest/gtest.h>

namespace flecc::airline {
namespace {

TEST(FleccTestbedTest, InitializesAgentsAgainstDirectory) {
  TestbedOptions opts;
  opts.n_agents = 6;
  opts.group_size = 3;
  FleccTestbed tb(opts);
  tb.init_all_agents();
  EXPECT_EQ(tb.directory().registered_count(), 6u);
  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    EXPECT_TRUE(tb.agent(i).cache().registered());
    EXPECT_TRUE(tb.agent(i).cache().valid());
  }
}

TEST(FleccTestbedTest, ReservationLoopPropagatesToDatabase) {
  TestbedOptions opts;
  opts.n_agents = 2;
  opts.group_size = 2;
  opts.validity_trigger = "false";  // always fetch freshest
  FleccTestbed tb(opts);
  tb.init_all_agents();
  const FlightNumber flight = tb.assignment().agent_flights[0][0];
  tb.agent(0).run_reservation_loop(5, flight, 1, /*pull_first=*/true);
  tb.agent(1).run_reservation_loop(5, flight, 1, /*pull_first=*/true);
  tb.run();
  // Final kill pushes any stragglers.
  tb.agent(0).shutdown();
  tb.agent(1).shutdown();
  tb.run();
  EXPECT_EQ(tb.database().find(flight)->reserved, 10);
  EXPECT_EQ(tb.agent(0).ops_completed(), 5u);
  EXPECT_EQ(tb.agent(0).op_latencies().count(), 5u);
}

TEST(FleccTestbedTest, OpProbeSamplesEachCall) {
  TestbedOptions opts;
  opts.n_agents = 1;
  opts.group_size = 1;
  FleccTestbed tb(opts);
  tb.init_all_agents();
  std::vector<std::size_t> indices;
  tb.agent(0).set_op_probe(
      [&](std::size_t idx, sim::Time) { indices.push_back(idx); });
  tb.agent(0).run_reservation_loop(3, tb.assignment().agent_flights[0][0], 1,
                                   true);
  tb.run();
  EXPECT_EQ(indices, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(FleccTestbedTest, DirectoryCrashRestartConvergesReservations) {
  TestbedOptions opts;
  opts.n_agents = 4;
  opts.group_size = 2;
  opts.durable_directory = true;
  opts.checkpoint_flush_every = 4;  // crash eats an unflushed WAL tail
  opts.heartbeat_interval = sim::msec(200);
  opts.retry.base_timeout = sim::msec(100);
  opts.retry.max_timeout = sim::msec(500);
  opts.retry.max_attempts = 10;
  FleccTestbed tb(opts);
  ASSERT_NE(tb.durability(), nullptr);
  tb.init_all_agents();
  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    tb.agent(i).run_reservation_loop(3, tb.assignment().agent_flights[i][0],
                                     1, /*pull_first=*/true);
  }
  tb.run_until(tb.simulator().now() + sim::msec(300));

  tb.crash_directory();
  EXPECT_TRUE(tb.directory_crashed());
  tb.run_until(tb.simulator().now() + sim::seconds(1));
  tb.restart_directory();
  EXPECT_FALSE(tb.directory_crashed());
  tb.run();
  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    tb.agent(i).shutdown();
  }
  tb.run();

  // Recovery bookkeeping and convergence: the new incarnation rebuilt
  // from the checkpoint + re-announcements, and no reservation is lost.
  EXPECT_EQ(tb.directory().generation(), 2u);
  EXPECT_GE(tb.directory().stats().get("recovery.restart"), 1u);
  EXPECT_GE(tb.directory().stats().get("recovery.completed"), 1u);
  std::int64_t reserved = 0;
  std::size_t completed = 0;
  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    completed += tb.agent(i).ops_completed();
  }
  reserved = tb.database().total_reserved();
  EXPECT_EQ(completed, 12u);  // every loop finished despite the crash
  EXPECT_GE(reserved, 12);    // no lost update (dups possible: WAL tail)
}

class ProtocolConservationTest : public ::testing::TestWithParam<Protocol> {};

TEST_P(ProtocolConservationTest, NoReservationIsLost) {
  // Conservation invariant: after quiescence + disconnect, every seat
  // confirmed by any agent is reflected in the primary database,
  // whatever the protocol.
  TestbedOptions opts;
  opts.n_agents = 6;
  opts.group_size = 3;
  opts.capacity = 100000;  // no clamping in this test
  CoherenceTestbed tb(GetParam(), opts);
  tb.connect_all();

  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    const FlightNumber flight = tb.assignment().agent_flights[i][0];
    for (int op = 0; op < 4; ++op) {
      tb.client(i).do_operation(
          [&tb, i, flight] { tb.view(i).confirm_tickets(flight, 1); }, {});
    }
  }
  tb.run();
  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    tb.client(i).disconnect({});
  }
  tb.run();

  std::int64_t confirmed = 0;
  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    confirmed += tb.view(i).confirmed_total();
  }
  EXPECT_EQ(confirmed, 24);
  EXPECT_EQ(tb.database().total_reserved(), confirmed);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ProtocolConservationTest,
                         ::testing::Values(Protocol::kFlecc,
                                           Protocol::kTimeSharing,
                                           Protocol::kMulticast));

TEST(CoherenceTestbedTest, FleccDirectoryOnlyForFlecc) {
  TestbedOptions opts;
  opts.n_agents = 2;
  CoherenceTestbed flecc(Protocol::kFlecc, opts);
  EXPECT_NE(flecc.flecc_directory(), nullptr);
  CoherenceTestbed ts(Protocol::kTimeSharing, opts);
  EXPECT_EQ(ts.flecc_directory(), nullptr);
  EXPECT_STREQ(to_string(Protocol::kMulticast), "multicast");
}

}  // namespace
}  // namespace flecc::airline
