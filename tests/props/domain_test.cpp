#include "props/domain.hpp"

#include <gtest/gtest.h>

#include "sim/rng.hpp"

namespace flecc::props {
namespace {

TEST(IntervalTest, ContainsAndWidth) {
  const Interval i{-2, 3};
  EXPECT_TRUE(i.contains(-2));
  EXPECT_TRUE(i.contains(3));
  EXPECT_FALSE(i.contains(4));
  EXPECT_FALSE(i.contains(-3));
  EXPECT_EQ(i.width(), 6u);
}

TEST(DomainTest, DefaultIsEmptyDiscrete) {
  const Domain d;
  EXPECT_TRUE(d.is_discrete());
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.size(), 0u);
}

TEST(DomainTest, IntervalBasics) {
  const Domain d = Domain::interval(10, 20);
  EXPECT_TRUE(d.is_interval());
  EXPECT_FALSE(d.empty());
  EXPECT_EQ(d.size(), 11u);
  EXPECT_TRUE(d.contains(Value{std::int64_t{10}}));
  EXPECT_TRUE(d.contains(Value{std::int64_t{20}}));
  EXPECT_FALSE(d.contains(Value{std::int64_t{21}}));
  EXPECT_FALSE(d.contains(Value{std::string{"ten"}}));
}

TEST(DomainTest, IntervalLoGreaterThanHiThrows) {
  EXPECT_THROW(Domain::interval(5, 4), std::invalid_argument);
  EXPECT_THROW(Domain::discrete_range(5, 4), std::invalid_argument);
}

TEST(DomainTest, DiscreteBasics) {
  const Domain d = Domain::discrete({Value{std::int64_t{1}},
                                     Value{std::string{"LAX"}},
                                     Value{std::int64_t{1}}});
  EXPECT_TRUE(d.is_discrete());
  EXPECT_EQ(d.size(), 2u);  // duplicate collapsed
  EXPECT_TRUE(d.contains(Value{std::string{"LAX"}}));
  EXPECT_FALSE(d.contains(Value{std::string{"JFK"}}));
}

TEST(DomainTest, DiscreteRangeMaterializes) {
  const Domain d = Domain::discrete_range(3, 6);
  EXPECT_EQ(d.size(), 4u);
  EXPECT_TRUE(d.contains(Value{std::int64_t{5}}));
  EXPECT_FALSE(d.contains(Value{std::int64_t{7}}));
}

TEST(DomainTest, AsDiscreteOnIntervalThrows) {
  const Domain d = Domain::interval(0, 1);
  EXPECT_THROW((void)d.as_discrete(), std::logic_error);
}

TEST(DomainTest, IntervalIntervalOverlap) {
  const Domain a = Domain::interval(0, 10);
  const Domain b = Domain::interval(10, 20);
  const Domain c = Domain::interval(11, 20);
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_TRUE(b.overlaps(a));
  EXPECT_FALSE(a.overlaps(c));
  EXPECT_FALSE(c.overlaps(a));
}

TEST(DomainTest, IntervalIntervalIntersect) {
  const Domain a = Domain::interval(0, 10);
  const Domain b = Domain::interval(5, 20);
  const Domain i = a.intersect(b);
  ASSERT_TRUE(i.is_interval());
  EXPECT_EQ(i.as_interval(), (Interval{5, 10}));
  EXPECT_TRUE(a.intersect(Domain::interval(11, 12)).empty());
}

TEST(DomainTest, DiscreteDiscreteIntersect) {
  const Domain a = Domain::discrete_range(1, 5);
  const Domain b = Domain::discrete_range(4, 8);
  const Domain i = a.intersect(b);
  EXPECT_TRUE(i.is_discrete());
  EXPECT_EQ(i.size(), 2u);  // {4, 5}
  EXPECT_TRUE(i.contains(Value{std::int64_t{4}}));
  EXPECT_TRUE(i.contains(Value{std::int64_t{5}}));
}

TEST(DomainTest, MixedIntersectYieldsDiscrete) {
  const Domain interval = Domain::interval(10, 12);
  const Domain discrete = Domain::discrete(
      {Value{std::int64_t{9}}, Value{std::int64_t{11}},
       Value{std::int64_t{13}}});
  for (const Domain& i :
       {interval.intersect(discrete), discrete.intersect(interval)}) {
    EXPECT_TRUE(i.is_discrete());
    EXPECT_EQ(i.size(), 1u);
    EXPECT_TRUE(i.contains(Value{std::int64_t{11}}));
  }
}

TEST(DomainTest, StringsNeverMatchIntervals) {
  const Domain interval = Domain::interval(0, 100);
  const Domain strings = Domain::discrete({Value{std::string{"42"}}});
  EXPECT_FALSE(interval.overlaps(strings));
  EXPECT_TRUE(interval.intersect(strings).empty());
}

TEST(DomainTest, EmptyDomainIntersectsNothing) {
  const Domain empty;
  const Domain a = Domain::interval(0, 5);
  EXPECT_FALSE(empty.overlaps(a));
  EXPECT_FALSE(a.overlaps(empty));
  EXPECT_TRUE(a.intersect(empty).empty());
}

TEST(DomainTest, ToStringRenders) {
  EXPECT_EQ(Domain::interval(1, 3).to_string(), "[1, 3]");
  EXPECT_EQ(
      Domain::discrete({Value{std::int64_t{2}}, Value{std::string{"x"}}})
          .to_string(),
      "{2, \"x\"}");
  EXPECT_EQ(Domain{}.to_string(), "{}");
}

// ---- property-style randomized checks -----------------------------------

class DomainPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

Domain random_domain(sim::Rng& rng) {
  if (rng.chance(0.5)) {
    const auto lo = rng.uniform_int(-20, 20);
    const auto hi = lo + rng.uniform_int(0, 15);
    return Domain::interval(lo, hi);
  }
  std::set<Value> values;
  const auto n = rng.uniform_int(0, 8);
  for (std::int64_t i = 0; i < n; ++i) {
    values.insert(Value{rng.uniform_int(-20, 20)});
  }
  return Domain::discrete(std::move(values));
}

TEST_P(DomainPropertyTest, IntersectionIsSymmetricAndSound) {
  sim::Rng rng(GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    const Domain a = random_domain(rng);
    const Domain b = random_domain(rng);

    // overlaps is symmetric and agrees with intersect emptiness.
    EXPECT_EQ(a.overlaps(b), b.overlaps(a));
    EXPECT_EQ(a.overlaps(b), !a.intersect(b).empty());

    // The intersection is contained in both, value by value.
    const Domain i = a.intersect(b);
    for (std::int64_t x = -25; x <= 40; ++x) {
      const Value v{x};
      const bool in_both = a.contains(v) && b.contains(v);
      EXPECT_EQ(i.contains(v), in_both)
          << "x=" << x << " a=" << a.to_string() << " b=" << b.to_string();
    }
  }
}

TEST_P(DomainPropertyTest, IntersectionIsIdempotent) {
  sim::Rng rng(GetParam() ^ 0xabcdef);
  for (int iter = 0; iter < 100; ++iter) {
    const Domain a = random_domain(rng);
    const Domain i = a.intersect(a);
    EXPECT_EQ(i.size(), a.size());
    EXPECT_EQ(a.overlaps(a), !a.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DomainPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace flecc::props
