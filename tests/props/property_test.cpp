#include "props/property.hpp"

#include <gtest/gtest.h>

#include "sim/rng.hpp"

namespace flecc::props {
namespace {

Property prop(std::string name, Domain d) {
  return Property{std::move(name), std::move(d)};
}

TEST(PropertyTest, IntersectRequiresSameName) {
  const auto a = prop("Flights", Domain::interval(0, 10));
  const auto b = prop("Seats", Domain::interval(0, 10));
  EXPECT_FALSE(a.intersect(b).has_value());  // Definition 3: names differ
}

TEST(PropertyTest, IntersectSameNameOverlapping) {
  const auto a = prop("Flights", Domain::interval(0, 10));
  const auto b = prop("Flights", Domain::interval(5, 20));
  const auto i = a.intersect(b);
  ASSERT_TRUE(i.has_value());
  EXPECT_EQ(i->name, "Flights");
  EXPECT_EQ(i->domain, Domain::interval(5, 10));
}

TEST(PropertyTest, IntersectSameNameDisjoint) {
  const auto a = prop("Flights", Domain::interval(0, 4));
  const auto b = prop("Flights", Domain::interval(5, 9));
  EXPECT_FALSE(a.intersect(b).has_value());
}

TEST(PropertySetTest, UniqueNamesEnforcedByReplacement) {
  PropertySet ps;
  ps.set("p", Domain::interval(0, 1));
  ps.set("p", Domain::interval(5, 6));  // replaces
  EXPECT_EQ(ps.size(), 1u);
  ASSERT_NE(ps.find("p"), nullptr);
  EXPECT_EQ(*ps.find("p"), Domain::interval(5, 6));
}

TEST(PropertySetTest, FindAndHasAndErase) {
  PropertySet ps{prop("a", Domain::interval(0, 1))};
  EXPECT_TRUE(ps.has("a"));
  EXPECT_FALSE(ps.has("b"));
  EXPECT_EQ(ps.find("b"), nullptr);
  EXPECT_TRUE(ps.erase("a"));
  EXPECT_FALSE(ps.erase("a"));
  EXPECT_TRUE(ps.empty());
}

TEST(PropertySetTest, IntersectPerDefinition2) {
  // Figure 2's scenario: V1 = {x,y}, V2 = {x,z} over property P.
  const PropertySet v1{
      prop("P", Domain::discrete({Value{std::string{"x"}},
                                  Value{std::string{"y"}}}))};
  const PropertySet v2{
      prop("P", Domain::discrete({Value{std::string{"x"}},
                                  Value{std::string{"z"}}}))};
  const PropertySet i = v1.intersect(v2);
  EXPECT_EQ(i.size(), 1u);
  ASSERT_NE(i.find("P"), nullptr);
  EXPECT_TRUE(i.find("P")->contains(Value{std::string{"x"}}));
  EXPECT_FALSE(i.find("P")->contains(Value{std::string{"y"}}));
  EXPECT_TRUE(v1.conflicts_with(v2));
}

TEST(PropertySetTest, MultiplePropertiesIntersect) {
  const PropertySet a{prop("p", Domain::interval(0, 10)),
                      prop("q", Domain::interval(100, 110)),
                      prop("r", Domain::interval(0, 1))};
  const PropertySet b{prop("p", Domain::interval(20, 30)),
                      prop("q", Domain::interval(105, 120)),
                      prop("s", Domain::interval(0, 1))};
  const PropertySet i = a.intersect(b);
  EXPECT_EQ(i.size(), 1u);  // only q overlaps
  EXPECT_TRUE(i.has("q"));
  EXPECT_TRUE(a.conflicts_with(b));
}

TEST(PropertySetTest, DisjointSetsDoNotConflict) {
  const PropertySet a{prop("p", Domain::interval(0, 10))};
  const PropertySet b{prop("p", Domain::interval(11, 20))};
  const PropertySet c{prop("other", Domain::interval(0, 10))};
  EXPECT_FALSE(a.conflicts_with(b));
  EXPECT_FALSE(a.conflicts_with(c));
  EXPECT_TRUE(a.intersect(b).empty());
  EXPECT_TRUE(a.intersect(c).empty());
}

TEST(PropertySetTest, EmptySetNeverConflicts) {
  const PropertySet empty;
  const PropertySet a{prop("p", Domain::interval(0, 10))};
  EXPECT_FALSE(empty.conflicts_with(a));
  EXPECT_FALSE(a.conflicts_with(empty));
  EXPECT_FALSE(empty.conflicts_with(empty));
}

TEST(PropertySetTest, SubsetOfBasics) {
  const PropertySet small{prop("p", Domain::interval(2, 4))};
  const PropertySet big{prop("p", Domain::interval(0, 10)),
                        prop("q", Domain::interval(0, 1))};
  EXPECT_TRUE(small.subset_of(big));
  EXPECT_FALSE(big.subset_of(small));  // q missing from small
  const PropertySet overhang{prop("p", Domain::interval(8, 12))};
  EXPECT_FALSE(overhang.subset_of(big));  // 11,12 not covered
  EXPECT_TRUE(PropertySet{}.subset_of(big));
}

TEST(PropertySetTest, SubsetOfMixedDomains) {
  const PropertySet discrete{prop(
      "p", Domain::discrete({Value{std::int64_t{3}}, Value{std::int64_t{7}}}))};
  const PropertySet interval{prop("p", Domain::interval(0, 10))};
  EXPECT_TRUE(discrete.subset_of(interval));
  EXPECT_FALSE(interval.subset_of(discrete));
}

TEST(PropertySetTest, ToStringRenders) {
  const PropertySet ps{prop("b", Domain::interval(1, 2)),
                       prop("a", Domain::interval(0, 0))};
  EXPECT_EQ(ps.to_string(), "{a=[0, 0], b=[1, 2]}");
}

// ---- randomized consistency between conflicts_with and intersect --------

class PropertySetPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

PropertySet random_set(sim::Rng& rng) {
  static const char* kNames[] = {"p", "q", "r"};
  PropertySet ps;
  for (const char* name : kNames) {
    if (!rng.chance(0.7)) continue;
    const auto lo = rng.uniform_int(0, 30);
    ps.set(name, Domain::interval(lo, lo + rng.uniform_int(0, 10)));
  }
  return ps;
}

TEST_P(PropertySetPropertyTest, ConflictsIffIntersectionNonEmpty) {
  sim::Rng rng(GetParam());
  for (int iter = 0; iter < 300; ++iter) {
    const PropertySet a = random_set(rng);
    const PropertySet b = random_set(rng);
    EXPECT_EQ(a.conflicts_with(b), !a.intersect(b).empty());
    EXPECT_EQ(a.conflicts_with(b), b.conflicts_with(a));  // symmetry
  }
}

TEST_P(PropertySetPropertyTest, SubsetImpliesConflictOrEmpty) {
  sim::Rng rng(GetParam() ^ 0x5555);
  for (int iter = 0; iter < 300; ++iter) {
    const PropertySet a = random_set(rng);
    const PropertySet b = random_set(rng);
    if (a.subset_of(b) && !a.empty()) {
      EXPECT_TRUE(a.conflicts_with(b));
      // And the intersection must equal a.
      EXPECT_EQ(a.intersect(b), a);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySetPropertyTest,
                         ::testing::Values(10u, 20u, 30u));

}  // namespace
}  // namespace flecc::props
