#include "core/merge_log.hpp"

#include <gtest/gtest.h>

namespace flecc::core {
namespace {

props::PropertySet flights(std::int64_t lo, std::int64_t hi) {
  props::PropertySet ps;
  ps.set("Flights", props::Domain::interval(lo, hi));
  return ps;
}

TEST(MergeLogTest, EmptyLogHasNoUnseen) {
  MergeLog log;
  EXPECT_EQ(log.unseen_for(flights(0, 10), 1, 0), 0u);
  EXPECT_TRUE(log.empty());
}

TEST(MergeLogTest, CountsRemoteConflictingMerges) {
  MergeLog log;
  log.record({1, 2, flights(0, 10), 100});
  log.record({2, 3, flights(5, 15), 200});
  log.record({3, 4, flights(20, 30), 300});  // disjoint from viewer
  // Viewer 1 over [0,10] that has seen nothing:
  EXPECT_EQ(log.unseen_for(flights(0, 10), 1, 0), 2u);
}

TEST(MergeLogTest, ExcludesOwnMerges) {
  MergeLog log;
  log.record({1, 1, flights(0, 10), 0});
  log.record({2, 2, flights(0, 10), 0});
  EXPECT_EQ(log.unseen_for(flights(0, 10), 1, 0), 1u);
  EXPECT_EQ(log.unseen_for(flights(0, 10), 2, 0), 1u);
}

TEST(MergeLogTest, SinceFiltersSeenVersions) {
  MergeLog log;
  for (Version v = 1; v <= 10; ++v) {
    log.record({v, 99, flights(0, 10), 0});
  }
  EXPECT_EQ(log.unseen_for(flights(0, 10), 1, 0), 10u);
  EXPECT_EQ(log.unseen_for(flights(0, 10), 1, 7), 3u);
  EXPECT_EQ(log.unseen_for(flights(0, 10), 1, 10), 0u);
  EXPECT_EQ(log.unseen_for(flights(0, 10), 1, 999), 0u);
}

TEST(MergeLogTest, PruneDropsOldRecords) {
  MergeLog log;
  for (Version v = 1; v <= 10; ++v) {
    log.record({v, 99, flights(0, 10), 0});
  }
  EXPECT_EQ(log.prune_below(4), 4u);
  EXPECT_EQ(log.size(), 6u);
  // Quality for viewers synced past the floor is unaffected.
  EXPECT_EQ(log.unseen_for(flights(0, 10), 1, 7), 3u);
  EXPECT_EQ(log.prune_below(100), 6u);
  EXPECT_TRUE(log.empty());
}

TEST(MergeLogTest, ConflictFilterUsesProperties) {
  MergeLog log;
  log.record({1, 2, flights(0, 4), 0});
  log.record({2, 2, flights(5, 9), 0});
  log.record({3, 2, flights(3, 6), 0});
  EXPECT_EQ(log.unseen_for(flights(0, 2), 1, 0), 1u);   // only [0,4]
  EXPECT_EQ(log.unseen_for(flights(4, 5), 1, 0), 3u);   // touches all
  EXPECT_EQ(log.unseen_for(flights(100, 110), 1, 0), 0u);
}

}  // namespace
}  // namespace flecc::core
