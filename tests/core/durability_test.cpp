// Directory crash-recovery tests: the DurabilityStore implementations
// (WAL record round-trips, flush lag, file persistence, compaction),
// checkpoint replay + the CM-assisted rebuild round, generation
// fencing of pre-crash traffic, and recovery across an empty
// checkpoint (PROTOCOL.md, "Directory crash-recovery").
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>

#include "core/durability.hpp"
#include "obs/trace.hpp"
#include "test_support.hpp"

namespace flecc::core {
namespace {

using testing::Harness;
using testing::cells;
using testing::inc_key;

// ---- WAL record (de)serialization -----------------------------------------

TEST(WalRecordTest, RoundTripsEveryKind) {
  WalRecord reg;
  reg.kind = WalKind::kRegister;
  reg.view = 7;
  reg.node = 3;
  reg.port = 1;
  reg.name = "kv View % with\nodd chars";
  reg.properties = cells(0, 9);
  reg.mode = Mode::kStrong;
  reg.validity = "(_age < 500)";

  WalRecord round;
  round.kind = WalKind::kRoundOpen;
  round.view = 9;
  round.properties = cells(5, 5);
  round.ns = 1;
  round.round = (2ull << 32) | 17;

  WalRecord op;
  op.kind = WalKind::kOpMerged;
  op.node = 4;
  op.port = 1;
  op.req = 12345;

  for (const WalRecord& rec : {reg, round, op}) {
    WalRecord parsed;
    ASSERT_TRUE(parse_record(serialize_record(rec), parsed))
        << serialize_record(rec);
    EXPECT_EQ(parsed, rec) << serialize_record(rec);
  }
}

TEST(WalRecordTest, ParseRejectsGarbage) {
  WalRecord out;
  EXPECT_FALSE(parse_record("", out));
  EXPECT_FALSE(parse_record("not a record", out));
}

// ---- MemoryDurabilityStore ------------------------------------------------

TEST(MemoryDurabilityStoreTest, CrashDropsOnlyTheUnflushedTail) {
  MemoryDurabilityStore store(/*flush_every=*/3);
  for (std::uint64_t i = 0; i < 5; ++i) {
    WalRecord rec;
    rec.kind = WalKind::kOpMerged;
    rec.req = i;
    store.append(rec);
  }
  EXPECT_EQ(store.entry_count(), 5u);
  store.crash();  // appends 4 and 5 were still buffered
  const auto survived = store.load();
  ASSERT_EQ(survived.size(), 3u);
  EXPECT_EQ(survived.back().req, 2u);
}

TEST(MemoryDurabilityStoreTest, GenerationSurvivesDropAll) {
  MemoryDurabilityStore store;
  store.set_generation(4);
  WalRecord rec;
  store.append(rec);
  store.drop_all();
  EXPECT_EQ(store.load().size(), 0u);
  EXPECT_EQ(store.generation(), 4u);  // the superblock outlives the WAL
}

TEST(MemoryDurabilityStoreTest, CompactReplacesTheLog) {
  MemoryDurabilityStore store(/*flush_every=*/10);
  for (int i = 0; i < 7; ++i) store.append(WalRecord{});
  WalRecord snap;
  snap.kind = WalKind::kRegister;
  snap.view = 1;
  store.compact({snap});
  EXPECT_EQ(store.entry_count(), 1u);
  EXPECT_EQ(store.compactions(), 1u);
  const auto records = store.load();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].view, 1u);
  store.crash();  // a compacted snapshot is durable at once
  EXPECT_EQ(store.load().size(), 1u);
}

// ---- FileDurabilityStore --------------------------------------------------

TEST(FileDurabilityStoreTest, StateSurvivesReopen) {
  const std::string path = "durability_test.wal";
  std::remove(path.c_str());
  {
    FileDurabilityStore store(path);
    EXPECT_EQ(store.generation(), 0u);
    store.set_generation(2);
    WalRecord rec;
    rec.kind = WalKind::kRegister;
    rec.view = 11;
    rec.name = "air.TravelAgent";
    rec.properties = cells(0, 4);
    store.append(rec);
    store.flush();
  }
  {
    FileDurabilityStore store(path);
    EXPECT_EQ(store.generation(), 2u);
    const auto records = store.load();
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].view, 11u);
    EXPECT_EQ(records[0].name, "air.TravelAgent");
  }
  std::remove(path.c_str());
}

// ---- crash-restart recovery ----------------------------------------------

/// Restart the harness directory against the same durability store,
/// simulating the crash (dropping the store's unflushed tail) first.
void restart_directory(Harness& h, MemoryDurabilityStore& store,
                       const DirectoryManager::Config& dcfg) {
  h.directory_.reset();  // unbind + discard all in-memory state
  store.crash();
  h.directory_ = std::make_unique<DirectoryManager>(*h.fabric_, h.dir_addr_,
                                                    h.primary_, dcfg);
}

TEST(DirectoryRecoveryTest, WarmCheckpointRebuildsAndResumesService) {
  MemoryDurabilityStore store;
  DirectoryManager::Config dcfg;
  dcfg.durability = &store;
  Harness h(2, 100, dcfg);
  auto a = h.make_member(0, 9);
  auto b = h.make_member(10, 19);
  a.cm->init_image();
  b.cm->init_image();
  h.run();
  a.view->increment(1, 5);
  a.cm->push_image();
  h.run();
  ASSERT_EQ(h.primary_.cell(1), 5);
  ASSERT_EQ(h.directory_->generation(), 1u);

  restart_directory(h, store, dcfg);
  EXPECT_EQ(h.directory_->generation(), 2u);
  EXPECT_TRUE(h.directory_->rebuilding());
  h.run();  // rebuild probes go out; both CMs re-announce

  EXPECT_FALSE(h.directory_->rebuilding());
  EXPECT_EQ(h.directory_->registered_count(), 2u);
  EXPECT_EQ(h.directory_->stats().get("recovery.restart"), 1u);
  EXPECT_EQ(h.directory_->stats().get("recovery.reannounced"), 2u);
  EXPECT_EQ(h.directory_->stats().get("recovery.completed"), 1u);
  EXPECT_EQ(a.cm->dir_generation(), 2u);
  EXPECT_EQ(b.cm->dir_generation(), 2u);

  // Service resumes under the new generation without re-registering.
  bool pushed = false;
  b.view->increment(12, 3);
  b.cm->push_image([&] { pushed = true; });
  h.run();
  EXPECT_TRUE(pushed);
  EXPECT_EQ(h.primary_.cell(12), 3);
  EXPECT_EQ(h.primary_.cell(1), 5);  // pre-crash merge not repeated
}

TEST(DirectoryRecoveryTest, InFlightOpSurvivesTheRestart) {
  MemoryDurabilityStore store;
  DirectoryManager::Config dcfg;
  dcfg.durability = &store;
  Harness h(1, 100, dcfg);
  CacheManager::Config cfg;
  cfg.retry.base_timeout = sim::msec(50);
  cfg.retry.max_timeout = sim::msec(200);
  cfg.retry.max_attempts = 8;
  auto a = h.make_member(0, 9, cfg);
  a.cm->init_image();
  h.run();

  // The push is in flight when the directory dies: the send reaches a
  // dead endpoint, the retries land in the new incarnation.
  a.view->increment(2, 7);
  bool pushed = false;
  a.cm->push_image([&] { pushed = true; });
  restart_directory(h, store, dcfg);
  h.run();

  EXPECT_TRUE(pushed);
  EXPECT_EQ(h.primary_.cell(2), 7);
  EXPECT_EQ(a.cm->dir_generation(), 2u);
  EXPECT_EQ(a.cm->queued_ops(), 0u);
  EXPECT_FALSE(a.cm->op_in_flight());
}

TEST(DirectoryRecoveryTest, EmptyCheckpointRecoversViaReRegistration) {
  MemoryDurabilityStore store;
  DirectoryManager::Config dcfg;
  dcfg.durability = &store;
  Harness h(2, 100, dcfg);
  CacheManager::Config hb;
  hb.heartbeat_interval = sim::msec(200);
  auto a = h.make_member(0, 9, hb);
  auto b = h.make_member(10, 19, hb);
  a.cm->init_image();
  b.cm->init_image();
  h.run();

  h.directory_.reset();
  store.drop_all();  // checkpoint wiped; only the generation survives
  h.directory_ = std::make_unique<DirectoryManager>(*h.fabric_, h.dir_addr_,
                                                    h.primary_, dcfg);
  // Nobody to probe: recovery completes immediately and the surviving
  // managers reconnect through the fenced-heartbeat path.
  EXPECT_FALSE(h.directory_->rebuilding());
  EXPECT_EQ(h.directory_->stats().get("recovery.completed"), 1u);
  EXPECT_EQ(h.directory_->registered_count(), 0u);
  h.run_until(h.sim_.now() + sim::seconds(2));
  h.run();

  EXPECT_EQ(h.directory_->registered_count(), 2u);
  EXPECT_EQ(h.directory_->generation(), 2u);
  EXPECT_EQ(a.cm->dir_generation(), 2u);
  bool pushed = false;
  a.view->increment(3, 2);
  a.cm->push_image([&] { pushed = true; });
  h.run();
  EXPECT_TRUE(pushed);
  EXPECT_EQ(h.primary_.cell(3), 2);
}

TEST(DirectoryRecoveryTest, SecondCrashRecoversFromCompactedState) {
  MemoryDurabilityStore store;
  DirectoryManager::Config dcfg;
  dcfg.durability = &store;
  dcfg.compact_threshold = 8;  // force compactions during the run
  Harness h(2, 100, dcfg);
  auto a = h.make_member(0, 9);
  auto b = h.make_member(10, 19);
  a.cm->init_image();
  b.cm->init_image();
  h.run();
  for (int i = 0; i < 6; ++i) {
    a.view->increment(i, 1);
    a.cm->push_image();
    b.view->increment(10 + i, 1);
    b.cm->push_image();
  }
  h.run();
  ASSERT_GE(store.compactions(), 1u);

  restart_directory(h, store, dcfg);
  h.run();
  ASSERT_EQ(h.directory_->generation(), 2u);
  ASSERT_EQ(h.directory_->registered_count(), 2u);

  restart_directory(h, store, dcfg);  // crash again, generation 3
  h.run();
  EXPECT_EQ(h.directory_->generation(), 3u);
  EXPECT_EQ(h.directory_->registered_count(), 2u);
  bool pushed = false;
  a.view->increment(0, 1);
  a.cm->push_image([&] { pushed = true; });
  h.run();
  EXPECT_TRUE(pushed);
  EXPECT_EQ(h.primary_.cell(0), 2);
}

// ---- generation fencing ---------------------------------------------------

/// Bare endpoint for injecting hand-crafted protocol messages.
struct Stub : net::Endpoint {
  std::vector<msg::RegisterAck> register_acks;
  std::vector<msg::OpNack> nacks;
  std::vector<msg::HeartbeatAck> heartbeat_acks;
  void on_message(const net::Message& m) override {
    if (m.type == msg::kRegisterAck) {
      register_acks.push_back(net::payload_as<msg::RegisterAck>(m));
    } else if (m.type == msg::kOpNack) {
      nacks.push_back(net::payload_as<msg::OpNack>(m));
    } else if (m.type == msg::kHeartbeatAck) {
      heartbeat_acks.push_back(net::payload_as<msg::HeartbeatAck>(m));
    }
  }
};

TEST(GenerationFencingTest, DelayedPreCrashExtractionsAreFenced) {
  MemoryDurabilityStore store;
  DirectoryManager::Config dcfg;
  dcfg.durability = &store;
  obs::TraceBuffer trace(1024);
  dcfg.trace = &trace;
  Harness h(1, 100, dcfg);
  Stub stub;
  const net::Address sa{h.hosts_[0], 1};
  h.fabric_->bind(sa, stub);

  msg::RegisterReq rr;
  rr.view_name = "kv.View";
  rr.properties = cells(0, 9);
  rr.req = 1;
  h.fabric_->send(sa, h.dir_addr_, msg::kRegisterReq, rr, 64);
  h.run();
  ASSERT_EQ(stub.register_acks.size(), 1u);
  const ViewId view = stub.register_acks[0].view;
  ASSERT_EQ(stub.register_acks[0].gen, 1u);
  const std::size_t merges_before = h.primary_.merges();

  restart_directory(h, store, dcfg);
  ASSERT_EQ(h.directory_->generation(), 2u);

  // Two extraction messages "delayed in the network" since before the
  // crash arrive at the new incarnation, still stamped generation 1.
  msg::FetchReply fr;
  fr.view = view;
  fr.token = (1ull << 32) | 1;
  fr.image.set_int(inc_key(5), 100);
  fr.dirty = true;
  fr.gen = 1;
  h.fabric_->send(sa, h.dir_addr_, msg::kFetchReply, fr, 64);

  msg::InvalidateAck ia;
  ia.view = view;
  ia.epoch = (1ull << 32) | 1;
  ia.image.set_int(inc_key(6), 100);
  ia.dirty = true;
  ia.gen = 1;
  h.fabric_->send(sa, h.dir_addr_, msg::kInvalidateAck, ia, 64);
  h.run_until(h.sim_.now() + sim::msec(50));

  // Both were rejected before touching any round or merge state.
  EXPECT_EQ(h.directory_->stats().get("recovery.fenced"), 2u);
  EXPECT_EQ(h.primary_.merges(), merges_before);
  EXPECT_EQ(h.primary_.cell(5), 0);
  EXPECT_EQ(h.primary_.cell(6), 0);
  if (obs::kTraceEnabled) {
    std::size_t fenced_events = 0;
    for (const auto& e : trace.snapshot()) {
      if (e.kind == obs::EventKind::kMsgFenced) ++fenced_events;
    }
    EXPECT_EQ(fenced_events, 2u);  // feeds recovery.fenced_messages
  }
}

TEST(GenerationFencingTest, StaleHeartbeatIsAnsweredUnknown) {
  MemoryDurabilityStore store;
  DirectoryManager::Config dcfg;
  dcfg.durability = &store;
  Harness h(1, 100, dcfg);
  Stub stub;
  const net::Address sa{h.hosts_[0], 1};
  h.fabric_->bind(sa, stub);

  msg::RegisterReq rr;
  rr.view_name = "kv.View";
  rr.properties = cells(0, 9);
  rr.req = 1;
  h.fabric_->send(sa, h.dir_addr_, msg::kRegisterReq, rr, 64);
  h.run();
  ASSERT_EQ(stub.register_acks.size(), 1u);
  const ViewId view = stub.register_acks[0].view;

  restart_directory(h, store, dcfg);
  ASSERT_EQ(h.directory_->generation(), 2u);

  // A heartbeat from before the crash, still stamped generation 1: the
  // directory fences it and answers known == false so the sender
  // reconnects instead of believing its registration survived.
  msg::Heartbeat hb;
  hb.view = view;
  hb.seq = 1;
  hb.gen = 1;
  h.fabric_->send(sa, h.dir_addr_, msg::kHeartbeat, hb, 64);
  h.run_until(h.sim_.now() + sim::msec(50));

  EXPECT_GE(h.directory_->stats().get("recovery.fenced"), 1u);
  ASSERT_GE(stub.heartbeat_acks.size(), 1u);
  EXPECT_FALSE(stub.heartbeat_acks.back().known);
  EXPECT_EQ(stub.heartbeat_acks.back().gen, 2u);
}

}  // namespace
}  // namespace flecc::core
