// CM write buffer (Config::write_buffer_ops) and heartbeat piggybacking
// (Config::piggyback_heartbeats): WEAK-mode push absorption, flush on
// capacity and extraction, and delta integrity under bursts.
#include <functional>
#include <gtest/gtest.h>

#include "core/cache_manager.hpp"
#include "test_support.hpp"

namespace flecc::core {
namespace {

using testing::Harness;

CacheManager::Config wbuf_cfg(std::size_t ops) {
  CacheManager::Config cfg;
  cfg.mode = Mode::kWeak;
  cfg.write_buffer_ops = ops;
  return cfg;
}

TEST(WriteBufferTest, AbsorbsWeakPushesUpToCapacity) {
  Harness h(1);
  auto m = h.make_member(0, 9, wbuf_cfg(3));
  m.cm->init_image();
  h.run();

  int completions = 0;
  for (int i = 0; i < 3; ++i) {
    m.view->increment(0, 1);
    m.cm->start_use_image();
    m.cm->end_use_image(/*modified=*/true);
    m.cm->push_image([&] { ++completions; });
  }
  // Absorbed pushes complete locally, without touching the directory.
  EXPECT_EQ(completions, 3);
  EXPECT_EQ(m.cm->write_buffer_depth(), 3u);
  EXPECT_EQ(m.cm->stats().get("wbuf.absorbed"), 3u);
  h.run();
  // Nothing was extracted or merged upstream yet.
  EXPECT_EQ(h.primary_.cell(0), 0);
  EXPECT_EQ(m.view->value(0), 3);  // deltas intact in the view
}

TEST(WriteBufferTest, CapacityFlushDeliversEveryBufferedDelta) {
  Harness h(1);
  auto m = h.make_member(0, 9, wbuf_cfg(3));
  m.cm->init_image();
  h.run();

  for (int i = 0; i < 4; ++i) {
    m.view->increment(0, 1);
    m.cm->start_use_image();
    m.cm->end_use_image(true);
    m.cm->push_image();
  }
  h.run();
  // The 4th push hit the cap: one real extraction carried all 4 deltas.
  EXPECT_EQ(h.primary_.cell(0), 4);
  EXPECT_EQ(m.cm->write_buffer_depth(), 0u);
  EXPECT_EQ(m.cm->stats().get("wbuf.absorbed"), 3u);
  EXPECT_EQ(m.cm->stats().get("wbuf.flush.capacity"), 1u);
  EXPECT_EQ(m.cm->stats().get("wbuf.flushed"), 1u);
}

TEST(WriteBufferTest, KillFlushesBufferedWrites) {
  Harness h(1);
  auto m = h.make_member(0, 9, wbuf_cfg(8));
  m.cm->init_image();
  h.run();

  for (int i = 0; i < 2; ++i) {
    m.view->increment(5, 3);
    m.cm->start_use_image();
    m.cm->end_use_image(true);
    m.cm->push_image();
  }
  EXPECT_EQ(m.cm->write_buffer_depth(), 2u);
  EXPECT_EQ(h.primary_.cell(5), 0);

  // Extraction on teardown flushes the buffer: no update is lost when
  // the component leaves (the chaos soak's database lower bound).
  m.cm->kill_image();
  h.run();
  EXPECT_EQ(h.primary_.cell(5), 6);
  EXPECT_EQ(m.cm->write_buffer_depth(), 0u);
  EXPECT_EQ(m.cm->stats().get("wbuf.flushed"), 1u);
}

TEST(WriteBufferTest, StrongModeNeverAbsorbs) {
  Harness h(1);
  auto cfg = wbuf_cfg(4);
  cfg.mode = Mode::kStrong;
  auto m = h.make_member(0, 9, cfg);
  m.cm->init_image();
  h.run();

  m.view->increment(1, 2);
  bool used = false;
  m.cm->start_use_image([&] {
    used = true;
    m.cm->end_use_image(true);
  });
  h.run();
  ASSERT_TRUE(used);
  m.cm->push_image();
  h.run();
  // STRONG semantics are untouched by the buffer knob.
  EXPECT_EQ(h.primary_.cell(1), 2);
  EXPECT_EQ(m.cm->stats().get("wbuf.absorbed"), 0u);
}

TEST(WriteBufferTest, BurstIntegrityMatchesUnbufferedRun) {
  // Same burst workload with and without the write buffer: after the
  // final kill the database totals must be identical (I3-style: deltas
  // are deferred, never dropped).
  auto run_total = [](std::size_t wbuf_ops) {
    Harness h(2);
    auto a = h.make_member(0, 9, wbuf_cfg(wbuf_ops));
    auto b = h.make_member(0, 9, wbuf_cfg(wbuf_ops));
    a.cm->init_image();
    b.cm->init_image();
    h.run();
    for (int round = 0; round < 10; ++round) {
      a.view->increment(round % 3, 1);
      a.cm->start_use_image();
      a.cm->end_use_image(true);
      a.cm->push_image();
      b.view->increment(round % 5, 2);
      b.cm->start_use_image();
      b.cm->end_use_image(true);
      b.cm->push_image();
      h.run();
    }
    a.cm->kill_image();
    b.cm->kill_image();
    h.run();
    return h.primary_.total();
  };
  const auto buffered = run_total(3);
  const auto unbuffered = run_total(0);
  EXPECT_EQ(buffered, unbuffered);
  EXPECT_EQ(buffered, 10 * 1 + 10 * 2);
}

TEST(WriteBufferTest, PiggybackSuppressesBeaconsUnderTrafficKeepsLiveness) {
  Harness h(1);
  CacheManager::Config cfg;
  cfg.mode = Mode::kWeak;
  cfg.heartbeat_interval = sim::msec(5);
  cfg.piggyback_heartbeats = true;
  auto m = h.make_member(0, 9, std::move(cfg));
  m.cm->init_image();
  h.run();

  // Steady directory traffic (a pull every 2 ms) for 50 ms: every
  // heartbeat tick finds fresh traffic and skips its beacon.
  const sim::Time deadline = h.fabric_->now() + sim::msec(50);
  std::function<void()> tick = [&] {
    if (h.fabric_->now() >= deadline) return;
    m.cm->pull_image();
    h.fabric_->schedule(m.cm->address(), sim::msec(2), tick);
  };
  tick();
  h.run();

  const auto piggybacked = m.cm->stats().get("heartbeat.piggybacked");
  const auto sent_busy = m.cm->stats().get("heartbeat.sent");
  EXPECT_GE(piggybacked, 5u);
  EXPECT_EQ(sent_busy, 0u);
  // The dedupe bugfix: regular replies reset the miss counter, so the
  // suppressed beacons never accumulate into a spurious failover.
  EXPECT_EQ(m.cm->stats().get("heartbeat.failover"), 0u);
  EXPECT_EQ(m.cm->stats().get("reconnect"), 0u);

  // Once the view goes idle, timed beacons resume: liveness detection
  // does not silently die with the traffic.
  h.fabric_->schedule(m.cm->address(), sim::msec(40), [] {});
  h.run();
  EXPECT_GT(m.cm->stats().get("heartbeat.sent"), sent_busy);
  EXPECT_EQ(m.cm->stats().get("heartbeat.failover"), 0u);
  EXPECT_TRUE(m.cm->registered());
}

}  // namespace
}  // namespace flecc::core
