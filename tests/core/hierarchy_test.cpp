// Tests for the two-level hierarchical extension (§6, extension 2):
// decentralized anti-entropy between component instances.
#include "core/hierarchy.hpp"

#include <gtest/gtest.h>

#include "net/sim_fabric.hpp"
#include "sim/simulator.hpp"
#include "test_support.hpp"

namespace flecc::core {
namespace {

using testing::KvPrimary;
using testing::cells;

struct HierarchyFixture : ::testing::Test {
  HierarchyFixture() {
    std::vector<net::NodeId> hosts;
    auto topo = net::Topology::lan(4, net::LinkSpec{}, &hosts);
    fabric = std::make_unique<net::SimFabric>(sim, std::move(topo));
    for (std::size_t i = 0; i < 3; ++i) {
      primaries.push_back(std::make_unique<KvPrimary>(10));
      SyncAgent::Config cfg;
      cfg.instance = static_cast<InstanceId>(i + 1);
      cfg.interval = sim::msec(100);
      agents.push_back(std::make_unique<SyncAgent>(
          *fabric, net::Address{hosts[i], 7}, *primaries[i], cells(0, 9),
          cfg));
    }
    for (std::size_t i = 0; i < 3; ++i) {
      for (std::size_t j = 0; j < 3; ++j) {
        if (i != j) {
          agents[i]->add_peer(net::Address{hosts[j], 7});
        }
      }
    }
  }

  /// Write an absolute cell value into one instance's primary.
  void write(std::size_t instance, std::int64_t cell, std::int64_t value) {
    ObjectImage img;
    img.set_int(testing::cell_key(cell), value);
    primaries[instance]->merge_into_object(img, cells(0, 9));
  }

  sim::Simulator sim;
  std::unique_ptr<net::SimFabric> fabric;
  std::vector<std::unique_ptr<KvPrimary>> primaries;
  std::vector<std::unique_ptr<SyncAgent>> agents;
};

TEST_F(HierarchyFixture, GossipOnceReachesOnePeer) {
  write(0, 3, 42);
  agents[0]->gossip_once();
  sim.run();
  // fanout 1: exactly one peer received and applied it.
  const int got = (primaries[1]->cell(3) == 42 ? 1 : 0) +
                  (primaries[2]->cell(3) == 42 ? 1 : 0);
  EXPECT_EQ(got, 1);
  EXPECT_EQ(agents[0]->rounds(), 1u);
}

TEST_F(HierarchyFixture, PeriodicGossipConverges) {
  write(0, 3, 42);
  write(1, 5, 7);
  for (auto& a : agents) a->start();
  sim.run_until(sim::seconds(2));
  for (auto& a : agents) a->stop();
  sim.run();
  for (const auto& p : primaries) {
    EXPECT_EQ(p->cell(3), 42);
    EXPECT_EQ(p->cell(5), 7);
  }
}

TEST_F(HierarchyFixture, StaleUpdatesIgnored) {
  write(0, 1, 5);
  agents[0]->gossip_once();
  agents[0]->gossip_once();  // round-robin: both peers now contacted once
  sim.run();
  const auto applied_before =
      agents[1]->applied() + agents[2]->applied();
  EXPECT_EQ(applied_before, 2u);

  // Deliver the same seq again by hand: receivers must ignore it.
  msg::HierSyncUpdate dup;
  dup.origin = 1;
  dup.seq = 1;  // already seen
  dup.image.set_int(testing::cell_key(1), 999);
  fabric->send(net::Address{0, 7}, net::Address{1, 7},
               msg::kHierSyncUpdate, dup, 64);
  sim.run();
  EXPECT_EQ(primaries[1]->cell(1), 5);  // unchanged
  EXPECT_GE(agents[1]->ignored_stale(), 1u);
}

TEST_F(HierarchyFixture, FanoutContactsMultiplePeers) {
  // Rebuild agent 0 with fanout 2.
  agents[0].reset();
  SyncAgent::Config cfg;
  cfg.instance = 1;
  cfg.fanout = 2;
  auto wide = std::make_unique<SyncAgent>(*fabric, net::Address{0, 7},
                                          *primaries[0], cells(0, 9), cfg);
  wide->add_peer(net::Address{1, 7});
  wide->add_peer(net::Address{2, 7});
  write(0, 4, 8);
  wide->gossip_once();
  sim.run();
  EXPECT_EQ(primaries[1]->cell(4), 8);
  EXPECT_EQ(primaries[2]->cell(4), 8);
}

TEST_F(HierarchyFixture, NoPeersIsNoOp) {
  auto lonely_primary = std::make_unique<KvPrimary>(10);
  SyncAgent lonely(*fabric, net::Address{3, 7}, *lonely_primary,
                   cells(0, 9), SyncAgent::Config{});
  lonely.gossip_once();
  sim.run();
  EXPECT_EQ(lonely.rounds(), 0u);
}

TEST_F(HierarchyFixture, StopHaltsGossip) {
  for (auto& a : agents) a->start();
  sim.run_until(sim::msec(500));
  for (auto& a : agents) a->stop();
  const auto rounds = agents[0]->rounds();
  sim.run_until(sim::seconds(2));
  EXPECT_EQ(agents[0]->rounds(), rounds);
}

TEST_F(HierarchyFixture, MonotoneMergeMakesConcurrentWritesConverge) {
  // Both instances write the same cell concurrently with different
  // values; KvPrimary's absolute "cell." merge is monotone (max), so
  // gossip drives every instance to the same (largest) value — the
  // merge function is the application's conflict resolver (§4.1).
  write(0, 2, 10);
  write(1, 2, 20);
  for (auto& a : agents) a->start();
  sim.run_until(sim::seconds(3));
  for (auto& a : agents) a->stop();
  sim.run();
  EXPECT_EQ(primaries[0]->cell(2), primaries[1]->cell(2));
  EXPECT_EQ(primaries[1]->cell(2), primaries[2]->cell(2));
}

}  // namespace
}  // namespace flecc::core
