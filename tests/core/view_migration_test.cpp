// Live view migration tests (PROTOCOL.md "View migration & CM
// journaling"): the ViewMove protocol quiesces the source, hands its
// state to the directory, installs the view on a prepared destination
// and atomically rebinds the directory entry — buffered updates travel
// in the handoff exactly once. Abort paths (dead destination, source
// crash mid-quiesce) resume service without losing or double-merging a
// delta; a restarted source cannot steal a migrated view back
// (register.fenced.moved); a liveness-evicted STRONG holder's token is
// reclaimed in the same sweep (view.evicted.strong_reclaim).
#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "core/durability.hpp"
#include "obs/monitor/invariant_monitor.hpp"
#include "obs/trace.hpp"
#include "test_support.hpp"

namespace flecc::core {
namespace {

using obs::monitor::InvariantMonitor;
using testing::Harness;
using testing::KvView;

/// Source member with two buffered (write-buffer-absorbed) increments:
/// cell 1 += 5 and cell 2 += 3 are pending in the view, not yet at the
/// primary — exactly the state a migration must not lose.
Harness::Member make_buffered_source(Harness& h,
                                     CacheManager::Config cfg = {}) {
  cfg.write_buffer_ops = 4;
  auto a = h.make_member(0, 9, cfg);
  a.cm->init_image();
  h.run();
  a.cm->start_use_image();
  a.view->increment(1, 5);
  a.cm->end_use_image(/*modified=*/true);
  a.cm->push_image();
  a.cm->start_use_image();
  a.view->increment(2, 3);
  a.cm->end_use_image(/*modified=*/true);
  a.cm->push_image();
  h.run();
  EXPECT_EQ(a.cm->write_buffer_depth(), 2u);
  EXPECT_EQ(h.primary_.cell(1), 0);
  return a;
}

TEST(ViewMigrationTest, WarmMoveRebindsViewAndKeepsEveryUpdate) {
  // One buffer per agent: a TraceBuffer carries its owner's Lamport
  // clock, so sharing one across endpoints would scramble stamping.
  obs::TraceRecorder rec(1 << 14);
  DirectoryManager::Config dcfg;
  dcfg.trace = rec.make_buffer("dm");
  Harness h(3, 100, dcfg);
  CacheManager::Config scfg;
  scfg.trace = rec.make_buffer("cm.src");
  auto a = make_buffered_source(h, scfg);
  const ViewId view = a.cm->id();

  CacheManager::Config dest_cfg;
  dest_cfg.await_migration = true;
  dest_cfg.trace = rec.make_buffer("cm.dest");
  auto dest = h.make_member(0, 9, dest_cfg);
  ASSERT_FALSE(dest.cm->registered());

  ASSERT_TRUE(h.directory_->begin_migration(view, dest.cm->address()));
  h.run();

  // The source is inert, the destination serves the SAME view id, and
  // the buffered increments merged into the primary exactly once.
  EXPECT_TRUE(a.cm->moved());
  EXPECT_FALSE(a.cm->alive());
  EXPECT_TRUE(dest.cm->registered());
  EXPECT_EQ(dest.cm->id(), view);
  EXPECT_EQ(h.primary_.cell(1), 5);
  EXPECT_EQ(h.primary_.cell(2), 3);
  // The install carried a fresh primary extract, handoff included.
  EXPECT_EQ(dest.view->value(1), 5);
  const auto& ds = h.directory_->stats();
  EXPECT_EQ(ds.get("migrate.begin"), 1u);
  EXPECT_EQ(ds.get("migrate.handoff"), 1u);
  EXPECT_EQ(ds.get("migrate.done"), 1u);
  EXPECT_EQ(ds.get("migrate.aborted"), 0u);
  EXPECT_EQ(h.directory_->migrations_inflight(), 0u);
  EXPECT_EQ(a.cm->stats().get("migrate.sealed"), 1u);
  EXPECT_EQ(a.cm->stats().get("migrate.moved"), 1u);
  EXPECT_EQ(dest.cm->stats().get("migrate.installed"), 1u);

  // Service continues at the new home.
  dest.view->increment(4, 2);
  bool pushed = false;
  dest.cm->push_image([&] { pushed = true; });
  h.run();
  EXPECT_TRUE(pushed);
  EXPECT_EQ(h.primary_.cell(4), 2);

  if (obs::kTraceEnabled) {
    InvariantMonitor checker;
    checker.run(rec.snapshot());
    EXPECT_TRUE(checker.violations().empty()) << checker.health_report();
    EXPECT_EQ(checker.unresolved_migration_epochs(), 0u);
  }
}

TEST(ViewMigrationTest, DeadDestinationAbortsAndSourceResumes) {
  Harness h(3);
  auto a = make_buffered_source(h);
  const ViewId view = a.cm->id();

  // Nothing is bound at this address: every ViewMoveInstall vanishes.
  const net::Address dead{h.hosts_[2], 1};
  ASSERT_TRUE(h.directory_->begin_migration(view, dead));
  h.run();

  // Install resends exhausted, the migration aborted, and the source
  // resumed serving — its handoff delta (already merged when the
  // HandoffState arrived) re-pushed under the same request id and was
  // absorbed by the exactly-once key, not merged twice.
  const auto& ds = h.directory_->stats();
  EXPECT_EQ(ds.get("migrate.aborted"), 1u);
  EXPECT_GE(ds.get("migrate.resend"), 1u);
  EXPECT_EQ(h.directory_->migrations_inflight(), 0u);
  EXPECT_FALSE(a.cm->moved());
  EXPECT_FALSE(a.cm->sealed());
  EXPECT_TRUE(a.cm->registered());
  EXPECT_EQ(a.cm->stats().get("migrate.resumed"), 1u);
  EXPECT_EQ(a.cm->stats().get("migrate.repush"), 1u);
  EXPECT_EQ(h.primary_.cell(1), 5);
  EXPECT_EQ(h.primary_.cell(2), 3);

  // The view is fully live again at the source.
  a.view->increment(3, 4);
  bool pushed = false;
  a.cm->push_image([&] { pushed = true; });
  a.cm->kill_image();  // flushes the write buffer on the way out
  h.run();
  EXPECT_TRUE(pushed);
  EXPECT_EQ(h.primary_.cell(3), 4);
}

TEST(ViewMigrationTest, SourceCrashAtQuiesceAbortsCleanly) {
  CacheManager* victim = nullptr;
  DirectoryManager::Config dcfg;
  dcfg.on_migrate_phase = [&victim](ViewId, int phase) {
    if (phase == DirectoryManager::kMigrateQuiesce && victim != nullptr) {
      victim->halt();
    }
  };
  Harness h(3, 100, dcfg);
  auto a = make_buffered_source(h);
  victim = a.cm.get();

  CacheManager::Config dest_cfg;
  dest_cfg.await_migration = true;
  auto dest = h.make_member(0, 9, dest_cfg);

  // The source dies the instant the quiesce request goes out: no
  // HandoffState ever arrives, the per-phase timer resends, then the
  // migration aborts without touching the destination.
  ASSERT_TRUE(h.directory_->begin_migration(a.cm->id(), dest.cm->address()));
  h.run();

  const auto& ds = h.directory_->stats();
  EXPECT_EQ(ds.get("migrate.aborted"), 1u);
  EXPECT_EQ(ds.get("migrate.handoff"), 0u);
  EXPECT_EQ(h.directory_->migrations_inflight(), 0u);
  EXPECT_FALSE(dest.cm->registered());
  EXPECT_EQ(dest.cm->stats().get("migrate.installed"), 0u);
}

TEST(ViewMigrationTest, RestartedSourceCannotStealMigratedView) {
  MemoryDurabilityStore journal(/*flush_every=*/1);
  CacheManager* victim = nullptr;
  DirectoryManager::Config dcfg;
  dcfg.on_migrate_phase = [&victim](ViewId, int phase) {
    if (phase == DirectoryManager::kMigrateHandoff && victim != nullptr) {
      victim->halt();
    }
  };
  Harness h(3, 100, dcfg);
  CacheManager::Config scfg;
  scfg.journal = &journal;
  auto a = make_buffered_source(h, scfg);
  victim = a.cm.get();
  const ViewId view = a.cm->id();
  const net::Address src_addr = a.cm->address();

  CacheManager::Config dest_cfg;
  dest_cfg.await_migration = true;
  auto dest = h.make_member(0, 9, dest_cfg);

  // The source dies right after its handoff merged; the migration still
  // completes (install + rebind need only the destination), but the
  // source never learns (ViewMoveDone hits a dead endpoint) and its
  // journal still names the view.
  ASSERT_TRUE(h.directory_->begin_migration(view, dest.cm->address()));
  h.run();
  ASSERT_EQ(h.directory_->stats().get("migrate.done"), 1u);
  ASSERT_EQ(dest.cm->id(), view);
  ASSERT_EQ(h.primary_.cell(1), 5);

  // Restart the source on the same address and journal: it asks to
  // resume the migrated view. The directory fences the resume (the view
  // lives elsewhere now) and registers it as a FRESH view instead.
  journal.crash();
  a.cm.reset();
  auto view2 = std::make_unique<KvView>(0, 9);
  CacheManager::Config rcfg;
  rcfg.view_name = "kv.View";
  rcfg.properties = view2->properties();
  rcfg.journal = &journal;
  auto cm2 = std::make_unique<CacheManager>(*h.fabric_, src_addr, h.dir_addr_,
                                            *view2, std::move(rcfg));
  ASSERT_EQ(cm2->resumed_view(), view);
  ASSERT_EQ(cm2->stats().get("journal.replay"), 1u);
  h.run();

  EXPECT_EQ(h.directory_->stats().get("register.fenced.moved"), 1u);
  EXPECT_TRUE(cm2->registered());
  EXPECT_NE(cm2->id(), view);
  EXPECT_EQ(dest.cm->id(), view);  // ownership never moved back
  // The journal-replayed handoff intent re-pushed under the original
  // request id and was absorbed — the buffered increments still count
  // exactly once.
  EXPECT_EQ(h.primary_.cell(1), 5);
  EXPECT_EQ(h.primary_.cell(2), 3);
}

TEST(ViewMigrationTest, StrongModeMoveCarriesModeToDestination) {
  Harness h(3);
  CacheManager::Config scfg;
  scfg.mode = Mode::kStrong;
  auto a = h.make_member(0, 9, scfg);
  a.cm->init_image();
  h.run();
  const ViewId view = a.cm->id();
  ASSERT_EQ(h.directory_->mode_of(view), Mode::kStrong);

  a.cm->start_use_image();
  h.run();
  a.view->increment(5, 9);
  a.cm->end_use_image(/*modified=*/true);
  h.run();

  CacheManager::Config dest_cfg;
  dest_cfg.await_migration = true;
  auto dest = h.make_member(0, 9, dest_cfg);
  ASSERT_TRUE(h.directory_->begin_migration(view, dest.cm->address()));
  h.run();

  EXPECT_TRUE(a.cm->moved());
  EXPECT_EQ(dest.cm->id(), view);
  EXPECT_EQ(dest.cm->mode(), Mode::kStrong);
  EXPECT_EQ(h.primary_.cell(5), 9);

  // The destination can run a full strong-mode use section.
  bool used = false;
  dest.cm->start_use_image([&] { used = true; });
  h.run();
  EXPECT_TRUE(used);
  dest.view->increment(6, 1);
  dest.cm->end_use_image(/*modified=*/true);
  dest.cm->kill_image();
  h.run();
  EXPECT_EQ(h.primary_.cell(6), 1);
}

TEST(ViewMigrationTest, EvictedStrongHolderTokenIsReclaimed) {
  DirectoryManager::Config dcfg;
  dcfg.liveness_timeout = sim::seconds(1);
  Harness h(2, 100, dcfg);
  CacheManager::Config cfg;
  cfg.mode = Mode::kStrong;
  cfg.heartbeat_interval = sim::msec(200);
  auto a = h.make_member(0, 9, cfg);
  auto b = h.make_member(0, 9, cfg);
  a.cm->init_image();
  b.cm->init_image();
  h.run();

  bool a_in = false;
  a.cm->start_use_image([&] { a_in = true; });
  h.run();
  ASSERT_TRUE(a_in);
  ASSERT_TRUE(a.cm->exclusive());

  // A dies holding the token, mid use-section. The liveness sweep
  // evicts it AND releases the token in the same sweep.
  a.cm->halt();
  h.run_until(h.sim_.now() + sim::seconds(3));
  h.run();
  EXPECT_EQ(h.directory_->stats().get("view.evicted.liveness"), 1u);
  EXPECT_EQ(h.directory_->stats().get("view.evicted.strong_reclaim"), 1u);
  EXPECT_EQ(h.directory_->registered_count(), 1u);

  // B can acquire immediately — the token was not orphaned.
  bool b_in = false;
  b.cm->start_use_image([&] { b_in = true; });
  h.run();
  EXPECT_TRUE(b_in);
  EXPECT_TRUE(b.cm->exclusive());
}

TEST(ViewMigrationTest, BeginMigrationRejectsBadTargets) {
  Harness h(3);
  auto a = h.make_member(0, 9);
  a.cm->init_image();
  h.run();

  CacheManager::Config dest_cfg;
  dest_cfg.await_migration = true;
  auto dest = h.make_member(0, 9, dest_cfg);

  // Unknown view.
  EXPECT_FALSE(h.directory_->begin_migration(ViewId{9999},
                                             dest.cm->address()));
  // Second begin for a view already migrating.
  EXPECT_TRUE(h.directory_->begin_migration(a.cm->id(), dest.cm->address()));
  EXPECT_FALSE(h.directory_->begin_migration(a.cm->id(), dest.cm->address()));
  EXPECT_EQ(h.directory_->stats().get("migrate.rejected"), 2u);
  h.run();
  EXPECT_EQ(h.directory_->stats().get("migrate.done"), 1u);
}

}  // namespace
}  // namespace flecc::core
