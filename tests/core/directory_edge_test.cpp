// Edge cases and robustness of the directory manager FSM.
#include <gtest/gtest.h>

#include "core/directory_manager.hpp"
#include "test_support.hpp"

namespace flecc::core {
namespace {

using testing::Harness;

TEST(DirectoryEdgeTest, StrongAcquiresGrantFifo) {
  Harness h(4);
  CacheManager::Config strong;
  strong.mode = Mode::kStrong;
  auto a = h.make_member(0, 9, strong);
  auto b = h.make_member(0, 9, strong);
  auto c = h.make_member(0, 9, strong);
  auto d = h.make_member(0, 9, strong);
  h.run();

  // a grabs ownership and stays inside its use section; b, c, d queue.
  a.cm->start_use_image();
  h.run();
  ASSERT_TRUE(a.cm->in_use());

  std::vector<int> grant_order;
  b.cm->start_use_image([&] {
    grant_order.push_back(2);
    b.cm->end_use_image(false);
  });
  c.cm->start_use_image([&] {
    grant_order.push_back(3);
    c.cm->end_use_image(false);
  });
  d.cm->start_use_image([&] {
    grant_order.push_back(4);
    d.cm->end_use_image(false);
  });
  h.run_until(h.sim_.now() + sim::msec(50));
  EXPECT_TRUE(grant_order.empty());  // all blocked behind a

  a.cm->end_use_image(false);
  h.run();
  EXPECT_EQ(grant_order, (std::vector<int>{2, 3, 4}));  // FIFO
}

TEST(DirectoryEdgeTest, MessagesFromUnknownViewsAreIgnored) {
  Harness h(1);
  auto m = h.make_member(0, 9);
  m.cm->init_image();
  h.run();

  // Hand-craft traffic with a bogus view id; nothing should crash or
  // corrupt state.
  const Version v0 = h.directory_->version();
  msg::PushUpdate push;
  push.view = 9999;
  push.image.set_int("inc.0", 100);
  h.fabric_->send(m.cm->address(), h.dir_addr_, msg::kPushUpdate, push, 64);
  msg::InitReq init{9999};
  h.fabric_->send(m.cm->address(), h.dir_addr_, msg::kInitReq, init, 32);
  msg::PullReq pull{9999, AccessIntent::kReadWrite};
  h.fabric_->send(m.cm->address(), h.dir_addr_, msg::kPullReq, pull, 32);
  msg::KillReq kill;
  kill.view = 9999;
  h.fabric_->send(m.cm->address(), h.dir_addr_, msg::kKillReq, kill, 32);
  h.run();
  EXPECT_EQ(h.directory_->version(), v0);
  EXPECT_EQ(h.primary_.cell(0), 0);
  EXPECT_EQ(h.directory_->registered_count(), 1u);
}

TEST(DirectoryEdgeTest, UnknownMessageTypeCounted) {
  Harness h(1);
  h.fabric_->send(net::Address{0, 1}, h.dir_addr_, "garbage.type", 0, 16);
  h.run();
  EXPECT_EQ(h.directory_->stats().get("msg.unknown"), 1u);
}

TEST(DirectoryEdgeTest, ConcurrentFetchRoundsUseDistinctTokens) {
  Harness h(3);
  auto producer = h.make_member(0, 9);
  CacheManager::Config fresh;
  fresh.validity_trigger = "false";
  auto c1 = h.make_member(0, 9, fresh);
  auto c2 = h.make_member(0, 9, fresh);
  producer.cm->init_image();
  c1.cm->init_image();
  c2.cm->init_image();
  h.run();

  producer.view->increment(3, 5);
  producer.cm->start_use_image();
  h.run();
  producer.cm->end_use_image(true);

  // Two pulls race; both fetch rounds must complete with fresh data.
  bool done1 = false, done2 = false;
  c1.cm->pull_image([&] { done1 = true; });
  c2.cm->pull_image([&] { done2 = true; });
  h.run();
  EXPECT_TRUE(done1);
  EXPECT_TRUE(done2);
  EXPECT_EQ(c1.view->base(3), 5);
  EXPECT_EQ(c2.view->base(3), 5);
  EXPECT_EQ(h.directory_->stats().get("op.pull.fetch_round"), 2u);
  EXPECT_EQ(h.directory_->stats().get("op.fetch.late"), 0u);
}

TEST(DirectoryEdgeTest, QualityFallsBackToSnapshotForDeadSources) {
  Harness h(2);
  auto a = h.make_member(0, 9);
  auto b = h.make_member(0, 9);
  a.cm->init_image();
  b.cm->init_image();
  h.run();

  a.view->increment(1);
  a.cm->push_image();
  h.run();
  EXPECT_EQ(h.directory_->quality(b.cm->id()), 1u);

  // The source deregisters; b's staleness accounting must survive via
  // the merge log's property snapshot.
  a.cm->kill_image();
  h.run();
  EXPECT_GE(h.directory_->quality(b.cm->id()), 1u);
}

TEST(DirectoryEdgeTest, EmptyPropertyViewNeverConflicts) {
  Harness h(2);
  auto other = h.make_member(0, 9);  // occupies host 0
  // make_member overwrites properties from the view; craft manually.
  CacheManager::Config empty_props;
  auto view = std::make_unique<testing::KvView>(0, 0);
  empty_props.view_name = "kv.Empty";
  empty_props.properties = props::PropertySet{};  // shares nothing
  CacheManager cm(*h.fabric_, net::Address{h.hosts_[1], 1}, h.dir_addr_,
                  *view, empty_props);
  h.run();
  ASSERT_TRUE(cm.registered());
  ASSERT_TRUE(other.cm->registered());
  EXPECT_FALSE(h.directory_->conflicts(cm.id(), other.cm->id()));
}

TEST(DirectoryEdgeTest, ViewsOfDifferentNamesStillConflictDynamically) {
  Harness h(2);
  CacheManager::Config named;
  named.view_name = "kv.SpecialView";
  auto a = h.make_member(0, 9, named);
  auto b = h.make_member(5, 14);  // default name, overlapping cells
  h.run();
  EXPECT_TRUE(h.directory_->conflicts(a.cm->id(), b.cm->id()));
}

TEST(DirectoryEdgeTest, PullWithoutValidityNeverFetches) {
  Harness h(2);
  auto a = h.make_member(0, 9);
  auto b = h.make_member(0, 9);  // no validity trigger
  a.cm->init_image();
  b.cm->init_image();
  h.run();
  a.view->increment(1, 2);  // dirty but unpushed
  for (int i = 0; i < 3; ++i) {
    b.cm->pull_image();
    h.run();
  }
  EXPECT_EQ(h.fabric_->counters().get("msg.sent.flecc.fetch_req"), 0u);
  EXPECT_EQ(b.view->base(1), 0);  // a's local work untouched, by design
}

TEST(DirectoryEdgeTest, InitRefreshesAfterStaleness) {
  Harness h(2);
  auto a = h.make_member(0, 9);
  auto b = h.make_member(0, 9);
  a.cm->init_image();
  b.cm->init_image();
  h.run();
  a.view->increment(4, 6);
  a.cm->push_image();
  h.run();
  EXPECT_EQ(h.directory_->quality(b.cm->id()), 1u);
  // A second init also counts as a sync point.
  b.cm->init_image();
  h.run();
  EXPECT_EQ(h.directory_->quality(b.cm->id()), 0u);
  EXPECT_EQ(b.view->base(4), 6);
}

}  // namespace
}  // namespace flecc::core
