// Cache-manager write-ahead journal tests (PROTOCOL.md "View migration
// & CM journaling"): without a journal a crash loses whatever the WEAK
// write buffer held (the seed behavior, pinned here as the regression
// baseline); with a journal the restarted manager replays the buffered
// write set and unacked push intents, resumes its view under a bumped
// incarnation, and every update reaches the primary exactly once —
// gated by the I2/I3 conformance monitor where tracing is compiled in.
#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "core/durability.hpp"
#include "obs/monitor/invariant_monitor.hpp"
#include "obs/trace.hpp"
#include "test_support.hpp"

namespace flecc::core {
namespace {

using obs::monitor::InvariantMonitor;
using testing::Harness;
using testing::KvView;

/// Crash-restart a member: halt the old manager (silent process death),
/// drop the journal's unflushed tail, and bring up a fresh manager on
/// the SAME address and journal with an EMPTY view — everything it
/// re-delivers must come from the journal.
Harness::Member restart_member(Harness& h, Harness::Member& old,
                               MemoryDurabilityStore& journal,
                               CacheManager::Config cfg) {
  const net::Address addr = old.cm->address();
  old.cm->halt();
  journal.crash();
  old.cm.reset();
  auto view = std::make_unique<KvView>(0, 9);
  cfg.view_name = "kv.View";
  cfg.properties = view->properties();
  cfg.journal = &journal;
  auto cm = std::make_unique<CacheManager>(*h.fabric_, addr, h.dir_addr_,
                                           *view, std::move(cfg));
  return Harness::Member{std::move(view), std::move(cm)};
}

TEST(CmJournalTest, WithoutJournalCrashLosesBufferedWrites) {
  Harness h(2);
  CacheManager::Config cfg;
  cfg.write_buffer_ops = 4;
  auto a = h.make_member(0, 9, cfg);
  a.cm->init_image();
  h.run();

  // The push is absorbed locally: it completes at once, the deltas stay
  // in the view awaiting the next real extraction.
  a.cm->start_use_image();
  a.view->increment(1, 5);
  a.cm->end_use_image(/*modified=*/true);
  bool pushed = false;
  a.cm->push_image([&] { pushed = true; });
  h.run();
  EXPECT_TRUE(pushed);
  EXPECT_EQ(a.cm->write_buffer_depth(), 1u);
  ASSERT_EQ(h.primary_.cell(1), 0);

  // Crash before any extraction: the buffered update is gone for good.
  // This is the pre-journal behavior the journal exists to fix.
  a.cm->halt();
  h.run();
  EXPECT_EQ(h.primary_.cell(1), 0);
}

TEST(CmJournalTest, JournalReplayDeliversBufferedWritesExactlyOnce) {
  MemoryDurabilityStore journal(/*flush_every=*/1);
  // One buffer per agent: a TraceBuffer carries its owner's Lamport
  // clock, so sharing one across endpoints would scramble stamping.
  obs::TraceRecorder rec(1 << 14);
  DirectoryManager::Config dcfg;
  dcfg.trace = rec.make_buffer("dm");
  Harness h(2, 100, dcfg);
  CacheManager::Config cfg;
  cfg.write_buffer_ops = 4;
  cfg.journal = &journal;
  cfg.trace = rec.make_buffer("cm.a");
  auto a = h.make_member(0, 9, cfg);
  a.cm->init_image();
  h.run();
  const ViewId view = a.cm->id();

  // Two absorbed pushes accumulate in the write buffer; each absorb
  // journals the cumulative buffered write set.
  a.cm->start_use_image();
  a.view->increment(1, 5);
  a.cm->end_use_image(/*modified=*/true);
  a.cm->push_image();
  a.cm->start_use_image();
  a.view->increment(2, 3);
  a.cm->end_use_image(/*modified=*/true);
  a.cm->push_image();
  h.run();
  ASSERT_EQ(a.cm->write_buffer_depth(), 2u);
  ASSERT_EQ(h.primary_.cell(1), 0);
  ASSERT_GE(a.cm->stats().get("journal.write"), 2u);

  auto a2 = restart_member(h, a, journal, cfg);
  EXPECT_EQ(a2.cm->incarnation(), 2u);
  EXPECT_EQ(a2.cm->resumed_view(), view);
  h.run();

  // The restart resumed the SAME view id and re-delivered the buffered
  // increments from the journal.
  EXPECT_TRUE(a2.cm->registered());
  EXPECT_EQ(a2.cm->id(), view);
  EXPECT_EQ(h.directory_->stats().get("view.resumed"), 1u);
  EXPECT_EQ(a2.cm->stats().get("journal.replay"), 1u);
  EXPECT_EQ(a2.cm->stats().get("journal.replayed.wbuf"), 1u);
  EXPECT_EQ(h.primary_.cell(1), 5);
  EXPECT_EQ(h.primary_.cell(2), 3);

  // Exactly once: later traffic does not re-apply the replayed deltas.
  bool in_use = false;
  a2.cm->start_use_image([&] { in_use = true; });
  h.run();
  ASSERT_TRUE(in_use);
  a2.view->increment(1, 1);
  a2.cm->end_use_image(/*modified=*/true);
  bool pushed = false;
  a2.cm->push_image([&] { pushed = true; });
  h.run();
  // wbuf absorbs it; force it out through a kill.
  a2.cm->kill_image();
  h.run();
  EXPECT_TRUE(pushed);
  EXPECT_EQ(h.primary_.cell(1), 6);
  EXPECT_EQ(h.primary_.cell(2), 3);

  if (obs::kTraceEnabled) {
    InvariantMonitor checker;
    checker.run(rec.snapshot());
    EXPECT_TRUE(checker.violations().empty()) << checker.health_report();
    EXPECT_GE(checker.check_count(obs::monitor::Invariant::kExactlyOnceMerge),
              1u);
  }
}

TEST(CmJournalTest, InFlightPushReplayedAfterCrashMergesOnce) {
  MemoryDurabilityStore journal(/*flush_every=*/1);
  DirectoryManager::Config dcfg;
  Harness h(2, 100, dcfg);
  CacheManager::Config cfg;
  cfg.journal = &journal;
  auto a = h.make_member(0, 9, cfg);
  a.cm->init_image();
  h.run();
  const ViewId view = a.cm->id();

  // Extract and send a push, then die before the ack arrives. The
  // original PushUpdate is already in the fabric and WILL merge; the
  // journaled intent replays the same extraction under the same request
  // id on restart.
  a.view->increment(3, 7);
  a.cm->push_image();
  h.run_until(h.sim_.now() + sim::usec(1));  // issue the send only
  ASSERT_TRUE(a.cm->op_in_flight());
  ASSERT_GE(a.cm->stats().get("journal.intent"), 1u);

  auto a2 = restart_member(h, a, journal, cfg);
  EXPECT_EQ(a2.cm->resumed_view(), view);
  h.run();

  EXPECT_TRUE(a2.cm->registered());
  EXPECT_EQ(a2.cm->id(), view);
  EXPECT_GE(a2.cm->stats().get("journal.replayed.intent"), 1u);
  // Merged exactly once: the directory's (address, req) exactly-once
  // key absorbed whichever copy arrived second.
  EXPECT_EQ(h.primary_.cell(3), 7);
  const auto& ds = h.directory_->stats();
  EXPECT_GE(ds.get("op.push.replayed_merge") + ds.get("msg.duplicate.replayed") +
                ds.get("msg.duplicate.dropped"),
            1u);
}

TEST(CmJournalTest, FreshJournalRegistersNormally) {
  MemoryDurabilityStore journal(/*flush_every=*/1);
  Harness h(1);
  CacheManager::Config cfg;
  cfg.journal = &journal;
  auto a = h.make_member(0, 9, cfg);
  EXPECT_EQ(a.cm->incarnation(), 1u);
  EXPECT_EQ(a.cm->resumed_view(), kInvalidViewId);
  a.cm->init_image();
  h.run();
  EXPECT_TRUE(a.cm->registered());
  EXPECT_GE(journal.entry_count(), 1u);  // the (view, incarnation) binding
}

}  // namespace
}  // namespace flecc::core
