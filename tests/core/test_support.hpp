// Shared fixtures for protocol tests: a minimal cell-array application
// (primary + views) and a LAN harness wiring a directory manager with
// any number of cache managers over a deterministic SimFabric.
#pragma once

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/cache_manager.hpp"
#include "core/directory_manager.hpp"
#include "net/sim_fabric.hpp"
#include "sim/simulator.hpp"

namespace flecc::core::testing {

inline constexpr const char* kCellsProperty = "Cells";

inline std::string cell_key(std::int64_t i) {
  return "cell." + std::to_string(i);
}
inline std::string inc_key(std::int64_t i) {
  return "inc." + std::to_string(i);
}

inline props::PropertySet cells(std::int64_t lo, std::int64_t hi) {
  props::PropertySet ps;
  ps.set(kCellsProperty, props::Domain::interval(lo, hi));
  return ps;
}

/// The original component: an array of integer cells supporting
/// increments (deltas) and absolute writes.
class KvPrimary : public PrimaryAdapter {
 public:
  explicit KvPrimary(std::int64_t n) : n_(n) {
    for (std::int64_t i = 0; i < n; ++i) cells_[i] = 0;
  }

  [[nodiscard]] ObjectImage extract_from_object(
      const props::PropertySet& vpl) const override {
    ObjectImage img;
    const props::Domain* scope = vpl.find(kCellsProperty);
    for (const auto& [i, v] : cells_) {
      if (scope != nullptr && !scope->contains(props::Value{i})) continue;
      img.set_int(cell_key(i), v);
    }
    return img;
  }

  void merge_into_object(const ObjectImage& image,
                         const props::PropertySet& vpl) override {
    (void)vpl;
    ++merges_;
    for (const auto& [key, value] : image) {
      const auto* iv = std::get_if<std::int64_t>(&value);
      if (iv == nullptr) continue;
      if (key.rfind("inc.", 0) == 0) {
        cells_[std::stoll(key.substr(4))] += *iv;
      } else if (key.rfind("cell.", 0) == 0) {
        // Monotone (max) state merge, mirroring the airline database's
        // raise_reserved: makes state-based gossip convergent.
        auto& cell = cells_[std::stoll(key.substr(5))];
        cell = std::max(cell, *iv);
      }
    }
  }

  [[nodiscard]] props::PropertySet data_properties() const override {
    return cells(0, n_ - 1);
  }

  [[nodiscard]] std::int64_t cell(std::int64_t i) const {
    auto it = cells_.find(i);
    return it == cells_.end() ? 0 : it->second;
  }
  [[nodiscard]] std::int64_t total() const {
    std::int64_t t = 0;
    for (const auto& [i, v] : cells_) {
      (void)i;
      t += v;
    }
    return t;
  }
  [[nodiscard]] std::size_t merges() const noexcept { return merges_; }

 private:
  std::int64_t n_;
  std::map<std::int64_t, std::int64_t> cells_;
  std::size_t merges_ = 0;
};

/// A view over a cell range: local base + pending increments.
class KvView : public ViewAdapter {
 public:
  KvView(std::int64_t lo, std::int64_t hi) : lo_(lo), hi_(hi) {}

  void increment(std::int64_t i, std::int64_t by = 1) {
    pending_[i] += by;
    vars_.set("pendingOps",
              vars_.lookup("pendingOps").value_or(0.0) + 1.0);
  }

  [[nodiscard]] std::int64_t base(std::int64_t i) const {
    auto it = base_.find(i);
    return it == base_.end() ? 0 : it->second;
  }
  [[nodiscard]] std::int64_t value(std::int64_t i) const {
    auto it = pending_.find(i);
    return base(i) + (it == pending_.end() ? 0 : it->second);
  }

  [[nodiscard]] props::PropertySet properties() const {
    return cells(lo_, hi_);
  }

  [[nodiscard]] ObjectImage extract_from_view(
      const props::PropertySet& vpl) override {
    (void)vpl;
    ++extracts_;
    ObjectImage img;
    for (const auto& [i, d] : pending_) {
      if (d != 0) img.set_int(inc_key(i), d);
    }
    pending_.clear();
    vars_.set("pendingOps", 0.0);
    return img;
  }

  void merge_into_view(const ObjectImage& image,
                       const props::PropertySet& vpl) override {
    (void)vpl;
    ++merges_;
    for (const auto& [key, value] : image) {
      const auto* iv = std::get_if<std::int64_t>(&value);
      if (iv != nullptr && key.rfind("cell.", 0) == 0) {
        base_[std::stoll(key.substr(5))] = *iv;
      }
    }
  }

  /// Non-destructive snapshot of the pending increments, so write-
  /// buffer absorbs can journal the buffered set (CM journaling).
  [[nodiscard]] ObjectImage peek_from_view(
      const props::PropertySet& vpl) const override {
    (void)vpl;
    ObjectImage img;
    for (const auto& [i, d] : pending_) {
      if (d != 0) img.set_int(inc_key(i), d);
    }
    return img;
  }

  [[nodiscard]] const trigger::Env& variables() const override {
    return vars_;
  }

  trigger::VariableStore& vars() { return vars_; }
  [[nodiscard]] std::size_t extracts() const noexcept { return extracts_; }
  [[nodiscard]] std::size_t merges() const noexcept { return merges_; }

 private:
  std::int64_t lo_, hi_;
  std::map<std::int64_t, std::int64_t> base_;
  std::map<std::int64_t, std::int64_t> pending_;
  trigger::VariableStore vars_;
  std::size_t extracts_ = 0;
  std::size_t merges_ = 0;
};

/// LAN harness: directory on the last host, views on the others.
class Harness {
 public:
  static net::SimFabric::Config default_fabric_config() {
    net::SimFabric::Config cfg;
    cfg.per_message_overhead = sim::usec(10);
    return cfg;
  }

  explicit Harness(std::size_t max_views, std::int64_t n_cells = 100,
                   DirectoryManager::Config dir_cfg = {},
                   net::SimFabric::Config fab_cfg = default_fabric_config())
      : primary_(n_cells) {
    std::vector<net::NodeId> hosts;
    net::LinkSpec link;
    link.latency = sim::usec(200);
    auto topo = net::Topology::lan(max_views + 1, link, &hosts);
    fabric_ = std::make_unique<net::SimFabric>(sim_, std::move(topo), fab_cfg);
    dir_addr_ = net::Address{hosts.back(), 1};
    hosts_ = hosts;
    directory_ = std::make_unique<DirectoryManager>(*fabric_, dir_addr_,
                                                    primary_, dir_cfg);
  }

  /// Create a view + cache manager pair over cells [lo, hi].
  struct Member {
    std::unique_ptr<KvView> view;
    std::unique_ptr<CacheManager> cm;
  };

  Member make_member(std::int64_t lo, std::int64_t hi,
                     CacheManager::Config cfg = {}) {
    auto view = std::make_unique<KvView>(lo, hi);
    if (cfg.view_name == "view") {
      cfg.view_name = "kv.View";
    }
    cfg.properties = view->properties();
    const net::Address addr{hosts_.at(next_host_++), 1};
    auto cm = std::make_unique<CacheManager>(*fabric_, addr, dir_addr_,
                                             *view, std::move(cfg));
    return Member{std::move(view), std::move(cm)};
  }

  void run() { sim_.run(); }
  void run_until(sim::Time t) { sim_.run_until(t); }

  sim::Simulator sim_;
  std::unique_ptr<net::SimFabric> fabric_;
  KvPrimary primary_;
  std::unique_ptr<DirectoryManager> directory_;
  net::Address dir_addr_;
  std::vector<net::NodeId> hosts_;
  std::size_t next_host_ = 0;
};

}  // namespace flecc::core::testing
