// Edge cases of the cache manager FSM: reconnect interactions, stale
// replies, trigger/queue interplay, and lifecycle corners.
#include <gtest/gtest.h>

#include "core/cache_manager.hpp"
#include "test_support.hpp"

namespace flecc::core {
namespace {

using testing::Harness;

TEST(CacheManagerEdgeTest, ReconnectWhileIdleKeepsWorking) {
  Harness h(1);
  auto m = h.make_member(0, 9);
  m.cm->init_image();
  h.run();
  const ViewId old_id = m.cm->id();

  bool reconnected = false;
  m.cm->reconnect([&] { reconnected = true; });
  h.run();
  EXPECT_TRUE(reconnected);
  EXPECT_TRUE(m.cm->registered());
  EXPECT_NE(m.cm->id(), old_id);  // fresh registration
  EXPECT_TRUE(m.cm->valid());

  // Normal operation continues under the new identity.
  m.view->increment(1, 2);
  m.cm->push_image();
  h.run();
  EXPECT_EQ(h.primary_.cell(1), 2);
}

TEST(CacheManagerEdgeTest, ReconnectRepushesDirtyState) {
  Harness h(1);
  auto m = h.make_member(0, 9);
  m.cm->init_image();
  h.run();
  m.view->increment(4, 6);
  m.cm->start_use_image();
  m.cm->end_use_image(true);
  ASSERT_TRUE(m.cm->dirty());

  m.cm->reconnect();
  h.run();
  EXPECT_FALSE(m.cm->dirty());
  EXPECT_EQ(h.primary_.cell(4), 6);
}

TEST(CacheManagerEdgeTest, ReconnectReissuesInFlightOperation) {
  Harness h(1);
  auto m = h.make_member(0, 9);
  m.cm->init_image();
  h.run();
  // Issue a pull whose reply will race the reconnect. The in-flight op
  // is re-issued under the new incarnation instead of being silently
  // abandoned: its completion still fires, exactly once.
  bool pull_done = false;
  m.cm->pull_image([&] { pull_done = true; });
  m.cm->reconnect();
  h.run();
  EXPECT_TRUE(m.cm->registered());
  EXPECT_TRUE(m.cm->valid());
  EXPECT_TRUE(pull_done);
  EXPECT_GE(m.cm->stats().get("reconnect"), 1u);
  EXPECT_GE(m.cm->stats().get("op.reissued"), 1u);

  // Later ops still work.
  bool fresh = false;
  m.cm->pull_image([&] { fresh = true; });
  h.run();
  EXPECT_TRUE(fresh);
}

TEST(CacheManagerEdgeTest, ReconnectAfterKillIsANoop) {
  Harness h(1);
  auto m = h.make_member(0, 9);
  m.cm->init_image();
  m.cm->kill_image();
  h.run();
  ASSERT_FALSE(m.cm->alive());
  bool done = false;
  m.cm->reconnect([&] { done = true; });
  EXPECT_TRUE(done);  // immediate no-op completion
  h.run();
  EXPECT_FALSE(m.cm->registered());
  EXPECT_EQ(h.directory_->registered_count(), 0u);
}

TEST(CacheManagerEdgeTest, QueuedOpsSurviveReconnect) {
  Harness h(1);
  auto m = h.make_member(0, 9);
  m.cm->init_image();
  h.run();
  // Queue work, then reconnect before it is issued: recovery ops run
  // first, then the queued push proceeds under the new registration.
  m.view->increment(2, 3);
  m.cm->reconnect();  // (clean: no dirty flag yet, deltas ride the push)
  bool pushed = false;
  m.cm->push_image([&] { pushed = true; });
  h.run();
  EXPECT_TRUE(pushed);
  EXPECT_EQ(h.primary_.cell(2), 3);
}

TEST(CacheManagerEdgeTest, StaleRepliesAfterKillAreCounted) {
  Harness h(2);
  auto a = h.make_member(0, 9);
  a.cm->init_image();
  h.run();
  // Forge a reply the manager is not waiting for.
  msg::PullReply stale;
  stale.image.set_int("cell.0", 1);
  h.fabric_->send(h.dir_addr_, a.cm->address(), msg::kPullReply, stale, 64);
  h.run();
  EXPECT_GE(a.cm->stats().get("msg.unexpected"), 1u);
  EXPECT_EQ(a.view->base(0), 0);  // not applied
}

TEST(CacheManagerEdgeTest, EndUseWithoutModificationStaysClean) {
  Harness h(1);
  auto m = h.make_member(0, 9);
  m.cm->init_image();
  h.run();
  m.cm->start_use_image();
  m.cm->end_use_image(/*modified=*/false);
  EXPECT_FALSE(m.cm->dirty());
  const auto version = h.directory_->version();
  m.cm->push_image();  // explicit push of a clean image
  h.run();
  // The push still round-trips (explicit call), merging an empty image.
  EXPECT_EQ(h.directory_->version(), version + 1);
  EXPECT_EQ(h.primary_.total(), 0);
}

TEST(CacheManagerEdgeTest, ExclusiveOwnershipIsReusedLocally) {
  Harness h(2);
  CacheManager::Config strong;
  strong.mode = Mode::kStrong;
  auto a = h.make_member(0, 9, strong);
  auto b = h.make_member(0, 9, strong);
  h.run();

  // a acquires then switches to weak → copy valid but not exclusive;
  // then a is invalidated on b's acquire while a holds no dirty data.
  a.cm->start_use_image();
  h.run();
  a.cm->end_use_image(false);
  b.cm->start_use_image();
  h.run();
  EXPECT_TRUE(h.directory_->is_exclusive(b.cm->id()));
  EXPECT_FALSE(a.cm->valid());
  b.cm->end_use_image(false);

  // A second acquisition by b is now local (still exclusive).
  const auto sent = h.fabric_->sent_count();
  b.cm->start_use_image();
  b.cm->end_use_image(false);
  EXPECT_EQ(h.fabric_->sent_count(), sent);
}

TEST(CacheManagerEdgeTest, TriggerTimerSurvivesReconnect) {
  Harness h(1);
  CacheManager::Config cfg;
  cfg.pull_trigger = "(t > 200)";
  cfg.trigger_poll = sim::msec(100);
  auto m = h.make_member(0, 9, cfg);
  m.cm->init_image();
  h.run();
  m.cm->reconnect();
  h.run();
  const auto before = m.cm->stats().get("auto.pull");
  h.run_until(h.sim_.now() + sim::seconds(1));
  EXPECT_GT(m.cm->stats().get("auto.pull"), before);
}

}  // namespace
}  // namespace flecc::core
