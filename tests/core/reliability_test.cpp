// Reliability-layer tests: retransmission with backoff, idempotent
// replay at the directory, liveness heartbeats with eviction, and the
// fail-safe reconnect paths (nack, failover, abandoned-op re-issue).
#include <gtest/gtest.h>

#include "core/durability.hpp"
#include "core/reliability.hpp"
#include "test_support.hpp"

namespace flecc::core {
namespace {

using testing::Harness;
using testing::KvView;
using testing::cells;
using testing::inc_key;

/// Fast retry policy so failure paths settle in simulated milliseconds.
RetryPolicy fast_retry() {
  RetryPolicy p;
  p.base_timeout = sim::msec(50);
  p.max_timeout = sim::msec(200);
  p.max_attempts = 4;
  return p;
}

// ---- RetryPolicy math -----------------------------------------------------

TEST(RetryPolicyTest, BackoffDoublesAndClamps) {
  RetryPolicy p;
  p.base_timeout = sim::msec(100);
  p.backoff = 2.0;
  p.max_timeout = sim::msec(500);
  p.jitter = 0.0;
  sim::Rng rng(7);
  EXPECT_EQ(p.timeout_for(1, rng), sim::msec(100));
  EXPECT_EQ(p.timeout_for(2, rng), sim::msec(200));
  EXPECT_EQ(p.timeout_for(3, rng), sim::msec(400));
  EXPECT_EQ(p.timeout_for(4, rng), sim::msec(500));  // clamped
  EXPECT_EQ(p.timeout_for(9, rng), sim::msec(500));
}

TEST(RetryPolicyTest, JitterIsDeterministicPerSeed) {
  RetryPolicy p;  // default 20% jitter
  sim::Rng r1(42), r2(42);
  for (std::size_t a = 1; a <= 5; ++a) {
    const auto t1 = p.timeout_for(a, r1);
    EXPECT_EQ(t1, p.timeout_for(a, r2));  // same seed, same schedule
    EXPECT_GT(t1, 0);
  }
}

TEST(RetryPolicyTest, SingleAttemptDisablesTheLayer) {
  RetryPolicy p;
  p.max_attempts = 1;
  EXPECT_FALSE(p.enabled());
  p.max_attempts = 2;
  EXPECT_TRUE(p.enabled());
}

// ---- retransmission under loss -------------------------------------------

TEST(ReliabilityTest, LossyRunCompletesEveryOpWithExactState) {
  net::SimFabric::Config fab = Harness::default_fabric_config();
  fab.loss_probability = 0.3;
  fab.seed = 99;
  Harness h(1, 100, {}, fab);
  auto m = h.make_member(0, 9);

  bool inited = false, killed = false;
  std::size_t pushes = 0, pulls = 0;
  m.cm->init_image([&] { inited = true; });
  for (int i = 0; i < 5; ++i) {
    m.view->increment(i, 1);
    m.cm->push_image([&] { ++pushes; });
    m.cm->pull_image([&] { ++pulls; });
  }
  m.cm->kill_image([&] { killed = true; });
  h.run();

  EXPECT_TRUE(inited);
  EXPECT_EQ(pushes, 5u);
  EXPECT_EQ(pulls, 5u);
  EXPECT_TRUE(killed);
  // Exactly one unit per cell: retransmitted pushes must not
  // double-merge (dedup window replays the cached ack).
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(h.primary_.cell(i), 1) << "cell " << i;
  }
  EXPECT_GE(m.cm->stats().get("op.retry"), 1u);
  EXPECT_GE(h.fabric_->counters().get("msg.dropped.loss"), 1u);
  EXPECT_EQ(m.cm->queued_ops(), 0u);
  EXPECT_FALSE(m.cm->op_in_flight());
}

// ---- idempotent replay at the directory -----------------------------------

struct Stub : net::Endpoint {
  std::vector<msg::RegisterAck> register_acks;
  std::vector<msg::PushAck> push_acks;
  std::vector<msg::OpNack> nacks;
  void on_message(const net::Message& m) override {
    if (m.type == msg::kRegisterAck) {
      register_acks.push_back(net::payload_as<msg::RegisterAck>(m));
    } else if (m.type == msg::kPushAck) {
      push_acks.push_back(net::payload_as<msg::PushAck>(m));
    } else if (m.type == msg::kOpNack) {
      nacks.push_back(net::payload_as<msg::OpNack>(m));
    }
  }
};

TEST(ReliabilityTest, DuplicatePushReplaysCachedAckWithoutRemerge) {
  Harness h(1);
  Stub stub;
  const net::Address sa{h.hosts_[0], 1};
  h.fabric_->bind(sa, stub);

  msg::RegisterReq rr;
  rr.view_name = "kv.View";
  rr.properties = cells(0, 9);
  rr.req = 1;
  h.fabric_->send(sa, h.dir_addr_, msg::kRegisterReq, rr, 64);
  h.run();
  ASSERT_EQ(stub.register_acks.size(), 1u);
  ASSERT_TRUE(stub.register_acks[0].accepted);
  const ViewId view = stub.register_acks[0].view;

  msg::PushUpdate pu;
  pu.view = view;
  pu.image.set_int(inc_key(3), 5);
  pu.req = 2;
  // The retransmit carries the identical request id and image.
  h.fabric_->send(sa, h.dir_addr_, msg::kPushUpdate, pu, 64);
  h.fabric_->send(sa, h.dir_addr_, msg::kPushUpdate, pu, 64);
  h.run();

  EXPECT_EQ(h.primary_.cell(3), 5);     // merged once, not twice
  EXPECT_EQ(h.primary_.merges(), 1u);
  ASSERT_EQ(stub.push_acks.size(), 2u);  // both sends were answered
  EXPECT_EQ(stub.push_acks[0].version, stub.push_acks[1].version);
  EXPECT_EQ(stub.push_acks[0].req, 2u);
  EXPECT_EQ(stub.push_acks[1].req, 2u);
  EXPECT_EQ(h.directory_->stats().get("msg.duplicate.replayed"), 1u);
}

TEST(ReliabilityTest, DuplicateRegisterReplaysTheSameViewId) {
  Harness h(1);
  Stub stub;
  const net::Address sa{h.hosts_[0], 1};
  h.fabric_->bind(sa, stub);

  msg::RegisterReq rr;
  rr.view_name = "kv.View";
  rr.properties = cells(0, 9);
  rr.req = 1;
  h.fabric_->send(sa, h.dir_addr_, msg::kRegisterReq, rr, 64);
  h.run();
  h.fabric_->send(sa, h.dir_addr_, msg::kRegisterReq, rr, 64);
  h.run();

  ASSERT_EQ(stub.register_acks.size(), 2u);
  EXPECT_EQ(stub.register_acks[0].view, stub.register_acks[1].view);
  EXPECT_EQ(h.directory_->registered_count(), 1u);
  // A replay is NOT a supersede: the original registration stands.
  EXPECT_EQ(h.directory_->stats().get("op.register.superseded"), 0u);
  EXPECT_EQ(h.directory_->stats().get("msg.duplicate.replayed"), 1u);
}

TEST(ReliabilityTest, DedupWindowDoesNotReplayAcrossGenerationBump) {
  // The dedup window is checkpointed, so a restarted directory could in
  // principle replay a pre-crash ack for a retransmitted request. The
  // generation fence must win: a retransmission still stamped with the
  // old generation is nacked ("stale generation"), never replayed and
  // never re-merged.
  MemoryDurabilityStore store;
  DirectoryManager::Config dcfg;
  dcfg.durability = &store;
  Harness h(1, 100, dcfg);
  Stub stub;
  const net::Address sa{h.hosts_[0], 1};
  h.fabric_->bind(sa, stub);

  msg::RegisterReq rr;
  rr.view_name = "kv.View";
  rr.properties = cells(0, 9);
  rr.req = 1;
  h.fabric_->send(sa, h.dir_addr_, msg::kRegisterReq, rr, 64);
  h.run();
  ASSERT_EQ(stub.register_acks.size(), 1u);
  ASSERT_EQ(stub.register_acks[0].gen, 1u);

  msg::PushUpdate pu;
  pu.view = stub.register_acks[0].view;
  pu.image.set_int(inc_key(3), 5);
  pu.req = 2;
  pu.gen = 1;
  h.fabric_->send(sa, h.dir_addr_, msg::kPushUpdate, pu, 64);
  h.run();
  ASSERT_EQ(stub.push_acks.size(), 1u);
  ASSERT_EQ(h.primary_.merges(), 1u);

  h.directory_.reset();
  store.crash();
  h.directory_ = std::make_unique<DirectoryManager>(*h.fabric_, h.dir_addr_,
                                                    h.primary_, dcfg);
  ASSERT_EQ(h.directory_->generation(), 2u);

  // The identical retransmission (same req, same gen stamp) arrives at
  // the new incarnation.
  h.fabric_->send(sa, h.dir_addr_, msg::kPushUpdate, pu, 64);
  h.run_until(h.sim_.now() + sim::msec(50));

  ASSERT_EQ(stub.nacks.size(), 1u);
  EXPECT_EQ(stub.nacks[0].reason, "stale generation");
  EXPECT_EQ(stub.nacks[0].req, 2u);
  EXPECT_EQ(stub.nacks[0].gen, 2u);
  EXPECT_EQ(stub.push_acks.size(), 1u);  // no replayed PushAck
  EXPECT_EQ(h.primary_.merges(), 1u);    // no second merge
  EXPECT_EQ(h.primary_.cell(3), 5);
  EXPECT_EQ(h.directory_->stats().get("recovery.fenced"), 1u);
  EXPECT_EQ(h.directory_->stats().get("msg.duplicate.replayed"), 0u);
}

TEST(ReliabilityTest, RetransmitDuringFetchRoundIsDroppedInProgress) {
  DirectoryManager::Config dcfg;
  dcfg.fetch_timeout = sim::msec(500);
  dcfg.command_retries = 2;
  Harness h(2, 100, dcfg);

  CacheManager::Config fast;
  fast.retry = fast_retry();  // 50 ms base << 500 ms round
  fast.validity_trigger = "false";  // every pull demand-fetches
  auto a = h.make_member(0, 9, fast);
  auto b = h.make_member(0, 9);
  a.cm->init_image();
  b.cm->init_image();
  h.run();

  // B crashes silently: the fetch round can only settle by timeout,
  // during which A retransmits its pull (same request id).
  b.cm->halt();
  bool pulled = false;
  a.cm->pull_image([&] { pulled = true; });
  h.run();

  EXPECT_TRUE(pulled);
  EXPECT_GE(a.cm->stats().get("op.retry"), 1u);
  EXPECT_GE(h.directory_->stats().get("msg.duplicate.dropped"), 1u);
  EXPECT_EQ(h.directory_->stats().get("op.fetch.timeout"), 1u);
  // The directory also re-sent the fetch command into the void.
  EXPECT_GE(h.directory_->stats().get("op.fetch.retry"), 1u);
}

TEST(ReliabilityTest, DuplicateFetchCommandsAreDroppedWhileDeferred) {
  DirectoryManager::Config dcfg;
  dcfg.fetch_timeout = sim::msec(500);
  dcfg.command_retries = 2;
  Harness h(2, 100, dcfg);

  CacheManager::Config vcfg;
  vcfg.validity_trigger = "false";
  auto a = h.make_member(0, 9, vcfg);
  auto b = h.make_member(0, 9);
  a.cm->init_image();
  b.cm->init_image();
  h.run();

  // B is inside its use section: the fetch is deferred. The directory's
  // command retries (paced at fetch_timeout/3) land while deferred and
  // must not queue a second serve.
  b.cm->start_use_image();
  bool pulled = false;
  a.cm->pull_image([&] { pulled = true; });
  h.run_until(h.sim_.now() + sim::msec(400));
  EXPECT_FALSE(pulled);  // round waiting on B
  EXPECT_GE(b.cm->stats().get("msg.duplicate.dropped"), 1u);
  b.cm->end_use_image(false);
  h.run();
  EXPECT_TRUE(pulled);
  EXPECT_EQ(b.cm->stats().get("fetch.served"), 1u);
  EXPECT_EQ(h.directory_->stats().get("op.fetch.timeout"), 0u);
}

// ---- liveness heartbeats --------------------------------------------------

TEST(ReliabilityTest, LivenessSweepEvictsSilentlyCrashedView) {
  DirectoryManager::Config dcfg;
  dcfg.liveness_timeout = sim::seconds(1);
  Harness h(2, 100, dcfg);

  CacheManager::Config hb;
  hb.heartbeat_interval = sim::msec(200);
  auto a = h.make_member(0, 9, hb);
  auto b = h.make_member(10, 19, hb);
  a.cm->init_image();
  b.cm->init_image();
  h.run();
  ASSERT_EQ(h.directory_->registered_count(), 2u);

  b.cm->halt();  // silent crash: heartbeats stop, no kill handshake
  h.run_until(h.sim_.now() + sim::seconds(3));

  EXPECT_EQ(h.directory_->registered_count(), 1u);
  EXPECT_EQ(h.directory_->stats().get("view.evicted.liveness"), 1u);
  EXPECT_TRUE(a.cm->registered());  // heartbeats kept A alive
  EXPECT_GE(h.directory_->stats().get("heartbeat.received"), 2u);
}

TEST(ReliabilityTest, HeartbeatAgainstRestartedDirectoryReconnects) {
  Harness h(1);
  CacheManager::Config hb;
  hb.heartbeat_interval = sim::msec(200);
  hb.retry = fast_retry();
  auto a = h.make_member(0, 9, hb);
  a.cm->init_image();
  h.run();

  // The directory restarts with an empty registry; the next heartbeat
  // is answered with known=false and the cache manager re-registers on
  // its own.
  h.directory_.reset();  // unbind the old incarnation first
  h.directory_ = std::make_unique<DirectoryManager>(*h.fabric_, h.dir_addr_,
                                                    h.primary_);
  h.run_until(h.sim_.now() + sim::seconds(2));
  h.run();

  EXPECT_GE(a.cm->stats().get("heartbeat.lost_registration"), 1u);
  EXPECT_GE(a.cm->stats().get("reconnect"), 1u);
  EXPECT_TRUE(a.cm->registered());
  EXPECT_TRUE(a.cm->valid());
  EXPECT_EQ(h.directory_->registered_count(), 1u);
}

TEST(ReliabilityTest, MissedHeartbeatAcksTriggerFailoverReconnect) {
  Harness h(1);
  CacheManager::Config hb;
  hb.heartbeat_interval = sim::msec(100);
  hb.heartbeat_miss_limit = 2;
  hb.retry = fast_retry();
  auto a = h.make_member(0, 9, hb);
  a.cm->init_image();
  h.run();

  // The directory endpoint goes dark (process hang): acks stop.
  h.fabric_->unbind(h.dir_addr_);
  h.run_until(h.sim_.now() + sim::seconds(1));
  EXPECT_GE(a.cm->stats().get("heartbeat.failover"), 1u);
  EXPECT_FALSE(a.cm->registered());  // reconnect in progress, no answer

  // It comes back; the daemon-paced register retry finds it.
  h.fabric_->bind(h.dir_addr_, *h.directory_);
  h.run_until(h.sim_.now() + sim::seconds(1));
  h.run();
  EXPECT_TRUE(a.cm->registered());
  EXPECT_TRUE(a.cm->valid());
  EXPECT_GE(h.directory_->stats().get("op.register.superseded"), 1u);
}

// ---- fail-safe reconnect --------------------------------------------------

TEST(ReliabilityTest, NackedInFlightOpReconnectsAndStillCompletes) {
  Harness h(1);
  CacheManager::Config cfg;
  cfg.retry = fast_retry();
  auto a = h.make_member(0, 9, cfg);
  a.cm->init_image();
  h.run();

  // Restart the directory; A's next pull hits an unknown-view nack and
  // must recover without burning its whole retry budget.
  h.directory_.reset();  // unbind the old incarnation first
  h.directory_ = std::make_unique<DirectoryManager>(*h.fabric_, h.dir_addr_,
                                                    h.primary_);
  bool pulled = false;
  a.cm->pull_image([&] { pulled = true; });
  h.run();

  EXPECT_TRUE(pulled);
  EXPECT_GE(a.cm->stats().get("op.nack"), 1u);
  EXPECT_GE(a.cm->stats().get("op.reissued"), 1u);
  EXPECT_TRUE(a.cm->registered());
  EXPECT_EQ(h.directory_->registered_count(), 1u);
  EXPECT_EQ(h.directory_->stats().get("op.nack.sent"), 1u);
}

TEST(ReliabilityTest, ManualReconnectReissuesAbandonedInFlightOp) {
  Harness h(1);
  auto a = h.make_member(0, 9);
  a.cm->init_image();
  h.run();

  bool pulled = false, reconnected = false;
  a.cm->pull_image([&] { pulled = true; });  // in flight immediately
  ASSERT_TRUE(a.cm->op_in_flight());
  a.cm->reconnect([&] { reconnected = true; });
  h.run();

  // The abandoned pull was re-issued, not silently dropped: both
  // completions fire.
  EXPECT_TRUE(reconnected);
  EXPECT_TRUE(pulled);
  EXPECT_EQ(a.cm->stats().get("op.reissued"), 1u);
  EXPECT_EQ(a.cm->queued_ops(), 0u);
  EXPECT_FALSE(a.cm->op_in_flight());
}

TEST(ReliabilityTest, RetryExhaustionFailsOverAndRecoversAfterHeal) {
  Harness h(1);
  CacheManager::Config cfg;
  cfg.retry = fast_retry();  // 4 attempts, 50..200 ms
  auto a = h.make_member(0, 9, cfg);
  a.cm->init_image();
  h.run();

  h.fabric_->partition({a.cm->address()}, {h.dir_addr_});
  bool pulled = false;
  a.cm->pull_image([&] { pulled = true; });
  h.run_until(h.sim_.now() + sim::seconds(2));
  EXPECT_FALSE(pulled);
  EXPECT_GE(a.cm->stats().get("op.failover"), 1u);  // budget exhausted

  h.fabric_->heal();
  h.run_until(h.sim_.now() + sim::seconds(2));
  h.run();
  EXPECT_TRUE(pulled);  // re-issued through the reconnect
  EXPECT_GE(a.cm->stats().get("op.reissued"), 1u);
  EXPECT_TRUE(a.cm->registered());
  EXPECT_EQ(a.cm->queued_ops(), 0u);
  EXPECT_FALSE(a.cm->op_in_flight());
}

TEST(ReliabilityTest, HaltedManagerIsInertAndCompletionsNeverFire) {
  Harness h(1);
  auto a = h.make_member(0, 9);
  a.cm->init_image();
  h.run();

  bool fired = false;
  a.cm->pull_image([&] { fired = true; });
  a.cm->halt();
  h.run();
  EXPECT_TRUE(a.cm->halted());
  EXPECT_FALSE(fired);  // silent crash: no completion, no error path
  EXPECT_EQ(a.cm->queued_ops(), 0u);
  EXPECT_FALSE(a.cm->op_in_flight());

  // Every later API call is ignored.
  a.cm->pull_image([&] { fired = true; });
  a.cm->reconnect([&] { fired = true; });
  h.run();
  EXPECT_FALSE(fired);
}

}  // namespace
}  // namespace flecc::core
