// Flow control & overload (PROTOCOL.md "Flow control & overload"):
// the circuit-breaker state machine in isolation, the canonical fabric
// wiring (lane classifier + Busy factory), DM-side admission control
// shedding with Busy-and-retry convergence, the CM degradation ladder,
// and terminal retransmission exhaustion (RetryPolicy::deadline).
#include "core/flow_control.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/messages.hpp"
#include "net/message.hpp"
#include "test_support.hpp"

namespace flecc::core {
namespace {

using testing::Harness;

// ---- CircuitBreaker state machine ------------------------------------------

flow::CircuitBreaker make_breaker(std::size_t threshold,
                                  sim::Duration open_timeout) {
  flow::CircuitBreaker::Config cfg;
  cfg.failure_threshold = threshold;
  cfg.open_timeout = open_timeout;
  return flow::CircuitBreaker(cfg);
}

TEST(CircuitBreakerTest, DisabledPassesEverythingThrough) {
  flow::CircuitBreaker b;  // threshold 0 = disabled
  EXPECT_FALSE(b.enabled());
  for (int i = 0; i < 10; ++i) b.on_busy(i, sim::msec(100));
  EXPECT_EQ(b.state(), flow::BreakerState::kClosed);
  EXPECT_TRUE(b.allow(0));
  EXPECT_TRUE(b.allow(0));  // no single-probe limit when disabled
}

TEST(CircuitBreakerTest, TripsAtThresholdNotBefore) {
  auto b = make_breaker(3, sim::msec(500));
  b.on_busy(0, 0);
  b.on_busy(1, 0);
  EXPECT_EQ(b.state(), flow::BreakerState::kClosed);
  EXPECT_TRUE(b.allow(2));
  b.on_busy(2, 0);  // third consecutive failure
  EXPECT_EQ(b.state(), flow::BreakerState::kOpen);
  EXPECT_FALSE(b.allow(3));
}

TEST(CircuitBreakerTest, RetryAfterExtendsTheOpenWindow) {
  auto b = make_breaker(1, sim::msec(100));
  b.on_busy(0, sim::msec(400));  // longer than open_timeout: honored
  EXPECT_EQ(b.state(), flow::BreakerState::kOpen);
  EXPECT_FALSE(b.allow(sim::msec(100)));
  EXPECT_FALSE(b.allow(sim::msec(399)));
  EXPECT_EQ(b.retry_in(sim::msec(100)), sim::msec(300));
  EXPECT_TRUE(b.allow(sim::msec(400)));  // window over: half-open probe
  EXPECT_EQ(b.state(), flow::BreakerState::kHalfOpen);
}

TEST(CircuitBreakerTest, HalfOpenAdmitsExactlyOneProbe) {
  auto b = make_breaker(1, sim::msec(100));
  b.on_busy(0, 0);
  EXPECT_TRUE(b.allow(sim::msec(100)));   // the probe
  EXPECT_FALSE(b.allow(sim::msec(100)));  // everyone else waits
  EXPECT_FALSE(b.allow(sim::msec(200)));
}

TEST(CircuitBreakerTest, ProbeFailureReopensProbeSuccessCloses) {
  auto b = make_breaker(1, sim::msec(100));
  b.on_busy(0, 0);
  ASSERT_TRUE(b.allow(sim::msec(100)));
  b.on_busy(sim::msec(100), sim::msec(50));  // probe answered Busy
  EXPECT_EQ(b.state(), flow::BreakerState::kOpen);
  ASSERT_TRUE(b.allow(sim::msec(200)));  // next probe
  b.on_success();
  EXPECT_EQ(b.state(), flow::BreakerState::kClosed);
  EXPECT_EQ(b.consecutive_failures(), 0u);
  EXPECT_TRUE(b.allow(sim::msec(200)));
}

TEST(CircuitBreakerTest, TransitionHookSeesEveryEdge) {
  auto b = make_breaker(1, sim::msec(100));
  std::vector<std::pair<flow::BreakerState, flow::BreakerState>> edges;
  b.set_transition_hook([&](flow::BreakerState from, flow::BreakerState to) {
    edges.emplace_back(from, to);
  });
  b.on_busy(0, 0);                     // closed -> open
  ASSERT_TRUE(b.allow(sim::msec(100)));  // open -> half_open
  b.on_success();                      // half_open -> closed
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0].second, flow::BreakerState::kOpen);
  EXPECT_EQ(edges[1].second, flow::BreakerState::kHalfOpen);
  EXPECT_EQ(edges[2].second, flow::BreakerState::kClosed);
}

// ---- lane classifier & Busy factory ----------------------------------------

TEST(FabricFlowTest, OnlyBulkRequestsAreSheddable) {
  for (const char* bulk : {msg::kInitReq, msg::kPullReq, msg::kPushUpdate,
                           msg::kAcquireReq}) {
    EXPECT_FALSE(flow::is_control_lane(bulk)) << bulk;
  }
  for (const char* control :
       {msg::kInitReply, msg::kPullReply, msg::kPushAck, msg::kAcquireGrant,
        msg::kInvalidateReq, msg::kInvalidateAck, msg::kFetchReq,
        msg::kFetchReply, msg::kHeartbeat, msg::kHeartbeatAck,
        msg::kRegisterReq, msg::kModeChangeReq, msg::kBusy, msg::kOpNack,
        "net.batch.frame"}) {
    EXPECT_TRUE(flow::is_control_lane(control)) << control;
  }
}

TEST(FabricFlowTest, WatermarksDeriveFromCapacity) {
  flow::FlowLimits limits;
  limits.queue_capacity = 16;
  const net::FlowControl fc = flow::make_fabric_flow(limits);
  EXPECT_TRUE(fc.enabled());
  EXPECT_EQ(fc.high(), 16u);
  EXPECT_EQ(fc.low(), 8u);
  EXPECT_FALSE(fc.control(msg::kAcquireReq));
  EXPECT_TRUE(fc.control(msg::kAcquireGrant));
}

TEST(FabricFlowTest, BusyFactoryRecoversTheRequestIdentity) {
  flow::FlowLimits limits;
  limits.queue_capacity = 4;
  const net::FlowControl fc = flow::make_fabric_flow(limits);
  net::Message shed;
  shed.type = msg::kAcquireReq;
  shed.payload = msg::AcquireReq{/*view=*/7, AccessIntent::kReadWrite,
                                 /*req=*/42, /*gen=*/3};
  const net::BusyReply reply = fc.make_busy(shed, sim::msec(75));
  ASSERT_EQ(reply.type, std::string(msg::kBusy));
  net::Message carrier;
  carrier.payload = reply.payload;
  const auto& busy = net::payload_as<msg::Busy>(carrier);
  EXPECT_EQ(busy.view, 7u);
  EXPECT_EQ(busy.req, 42u);
  EXPECT_EQ(busy.retry_after, sim::msec(75));
  EXPECT_EQ(busy.gen, 0u);  // fabric-synthesized: never fenced
}

TEST(FabricFlowTest, UnanswerableTypesShedSilently) {
  flow::FlowLimits limits;
  limits.queue_capacity = 4;
  const net::FlowControl fc = flow::make_fabric_flow(limits);
  net::Message shed;
  shed.type = "t.unknown";
  shed.payload = 0;
  EXPECT_TRUE(fc.make_busy(shed, sim::msec(75)).type.empty());
}

// ---- DM admission control ---------------------------------------------------

TEST(AdmissionControlTest, FullAcquireQueueShedsWithBusyAndRetryConverges) {
  DirectoryManager::Config dir_cfg;
  dir_cfg.max_acquire_queue = 1;
  dir_cfg.busy_retry_after = sim::msec(50);
  Harness h(4, 100, dir_cfg);

  // Three conflicting strong-mode members race for exclusivity: one
  // acquire in flight + one queued + the third answered Busy.
  CacheManager::Config cm_cfg;
  cm_cfg.mode = Mode::kStrong;
  std::vector<Harness::Member> members;
  for (int i = 0; i < 3; ++i) members.push_back(h.make_member(0, 9, cm_cfg));
  h.run();

  int completed = 0;
  for (auto& m : members) {
    m.cm->init_image();
    m.cm->start_use_image([&completed, cm = m.cm.get()] {
      ++completed;
      cm->end_use_image(false);
    });
  }
  h.run();

  EXPECT_EQ(completed, 3);
  EXPECT_GE(h.directory_->stats().get("shed.acquire"), 1u);
  EXPECT_GE(h.directory_->stats().get("flow.busy.sent"), 1u);
  std::uint64_t busy_received = 0;
  for (auto& m : members) {
    busy_received += m.cm->stats().get("flow.busy.received");
  }
  EXPECT_GE(busy_received, 1u);
}

// ---- CM degradation ladder --------------------------------------------------

TEST(DegradationTest, BusyStormDegradesStrongToWeakAndRestores) {
  DirectoryManager::Config dir_cfg;
  dir_cfg.max_acquire_queue = 1;
  dir_cfg.busy_retry_after = sim::msec(50);
  Harness h(5, 100, dir_cfg);

  CacheManager::Config cm_cfg;
  cm_cfg.mode = Mode::kStrong;
  cm_cfg.breaker_threshold = 1;  // a single Busy trips the ladder
  cm_cfg.breaker_open_timeout = sim::msec(200);
  cm_cfg.degrade_on_overload = true;
  cm_cfg.write_buffer_ops = 4;
  std::vector<Harness::Member> members;
  for (int i = 0; i < 4; ++i) members.push_back(h.make_member(0, 9, cm_cfg));
  for (auto& m : members) m.cm->init_image();
  h.run();

  // Each member runs a chain of 8 use/modify ops. Degraded members
  // buffer writes; the buffer flush (every 4 ops) is the bulk probe
  // that eventually closes the breaker again and restores STRONG.
  constexpr int kOpsEach = 8;
  int completed = 0;
  std::function<void(std::size_t, int)> run_ops =
      [&members, &run_ops, &completed](std::size_t i, int remaining) {
        CacheManager* cm = members[i].cm.get();
        cm->start_use_image([&members, &run_ops, &completed, i, remaining] {
          members[i].view->increment(static_cast<std::int64_t>(i));
          members[i].cm->end_use_image(true);
          ++completed;
          if (remaining > 1) run_ops(i, remaining - 1);
        });
      };
  for (std::size_t i = 0; i < members.size(); ++i) run_ops(i, kOpsEach);
  h.run();

  EXPECT_EQ(completed, kOpsEach * static_cast<int>(members.size()));
  std::uint64_t degraded = 0, restored = 0;
  for (auto& m : members) {
    degraded += m.cm->stats().get("breaker.degrade");
    restored += m.cm->stats().get("breaker.restore");
    // Transient: every degraded manager climbed back to STRONG.
    EXPECT_FALSE(m.cm->degraded());
    EXPECT_EQ(m.cm->mode(), Mode::kStrong);
    EXPECT_EQ(m.cm->breaker_state(), flow::BreakerState::kClosed);
  }
  EXPECT_GE(degraded, 1u);
  EXPECT_EQ(degraded, restored);
}

// ---- terminal retransmission exhaustion ------------------------------------

TEST(RetryExhaustionTest, DeadlineGivesUpTerminallyInsteadOfRetryingForever) {
  Harness h(2);
  CacheManager::Config cfg;
  cfg.retry.base_timeout = sim::msec(20);
  cfg.retry.max_timeout = sim::msec(40);
  cfg.retry.max_attempts = 100;  // attempts alone would retry ~forever
  cfg.retry.deadline = sim::msec(500);
  std::string gave_up;
  cfg.on_give_up = [&gave_up](const char* what) { gave_up = what; };
  auto m = h.make_member(0, 9, cfg);
  bool init_done = false;
  m.cm->init_image([&init_done] { init_done = true; });
  h.run();
  ASSERT_TRUE(init_done);

  // The directory vanishes; the next op retries until the deadline,
  // then gives up terminally — its completion still fires.
  h.fabric_->partition({m.cm->address()}, {h.dir_addr_});
  bool pull_done = false;
  m.cm->pull_image([&pull_done] { pull_done = true; });
  h.run_until(sim::seconds(5));

  EXPECT_TRUE(pull_done);
  EXPECT_EQ(gave_up, "pull");
  EXPECT_GE(m.cm->stats().get("reliability.exhausted"), 1u);
  EXPECT_FALSE(m.cm->op_in_flight());
}

TEST(RetryExhaustionTest, UnreachableDirectoryFailsRegistrationAtDeadline) {
  Harness h(2);
  h.directory_.reset();  // nobody listening: register_req drops unbound
  CacheManager::Config cfg;
  cfg.retry.base_timeout = sim::msec(20);
  cfg.retry.max_timeout = sim::msec(40);
  cfg.retry.max_attempts = 100;
  cfg.retry.deadline = sim::msec(500);
  std::string gave_up;
  cfg.on_give_up = [&gave_up](const char* what) { gave_up = what; };
  auto m = h.make_member(0, 9, cfg);
  bool init_done = false;
  m.cm->init_image([&init_done] { init_done = true; });
  h.run_until(sim::seconds(5));

  EXPECT_TRUE(init_done);  // flushed, not wedged
  EXPECT_TRUE(m.cm->rejected());
  EXPECT_FALSE(m.cm->registered());
  EXPECT_EQ(m.cm->reject_reason(), "registration deadline exhausted");
  EXPECT_EQ(gave_up, "register");
  EXPECT_GE(m.cm->stats().get("reliability.exhausted"), 1u);
}

}  // namespace
}  // namespace flecc::core
