#include "core/static_map.hpp"

#include <gtest/gtest.h>

namespace flecc::core {
namespace {

TEST(StaticMapTest, DefaultsToDynamic) {
  StaticMap m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.query("a", "b"), Relation::kDynamic);
  EXPECT_EQ(m.query("a", "a"), Relation::kDynamic);
}

TEST(StaticMapTest, StoresSymmetrically) {
  StaticMap m;
  m.set("viewer", "buyer", Relation::kConflict);
  EXPECT_EQ(m.query("viewer", "buyer"), Relation::kConflict);
  EXPECT_EQ(m.query("buyer", "viewer"), Relation::kConflict);
  EXPECT_EQ(m.size(), 1u);
}

TEST(StaticMapTest, OverwriteReplaces) {
  StaticMap m;
  m.set("a", "b", Relation::kConflict);
  m.set("b", "a", Relation::kNoConflict);
  EXPECT_EQ(m.query("a", "b"), Relation::kNoConflict);
  EXPECT_EQ(m.size(), 1u);
}

TEST(StaticMapTest, ExplicitDynamicEntry) {
  StaticMap m;
  m.set("a", "b", Relation::kDynamic);
  EXPECT_EQ(m.query("a", "b"), Relation::kDynamic);
  EXPECT_EQ(m.size(), 1u);
}

TEST(StaticMapTest, SelfPairsAllowed) {
  // Two views of the same component type can be told apart only
  // dynamically, but an application may force a static answer.
  StaticMap m;
  m.set("air.TravelAgent", "air.TravelAgent", Relation::kConflict);
  EXPECT_EQ(m.query("air.TravelAgent", "air.TravelAgent"),
            Relation::kConflict);
}

TEST(StaticMapTest, ToStringNames) {
  EXPECT_STREQ(to_string(Relation::kConflict), "conflict");
  EXPECT_STREQ(to_string(Relation::kNoConflict), "no-conflict");
  EXPECT_STREQ(to_string(Relation::kDynamic), "dynamic");
}

}  // namespace
}  // namespace flecc::core
