// The conformance monitor against the REAL protocol: a clean run
// produces zero violations with every invariant actually exercised
// (non-zero check counts), and mutations prove the invariants fire —
// live protocol sabotage where a chaos knob exists
// (DirectoryManager::Config::chaos_ignore_conflicts for I1), trace
// mutation elsewhere (the protocol itself refuses to violate I2-I4, so
// the negative harness corrupts the recorded stream the way a buggy
// implementation would have). Also pins the wire-type strings the
// monitor mirrors from core/messages.hpp.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "core/cache_manager.hpp"
#include "core/directory_manager.hpp"
#include "core/messages.hpp"
#include "net/sim_fabric.hpp"
#include "obs/monitor/invariant_monitor.hpp"
#include "sim/simulator.hpp"

namespace flecc::core {
namespace {

using obs::monitor::Invariant;
using obs::monitor::InvariantMonitor;

/// Single-slot primary shared by two fully conflicting views.
class CounterPrimary : public PrimaryAdapter {
 public:
  [[nodiscard]] ObjectImage extract_from_object(
      const props::PropertySet&) const override {
    ObjectImage img;
    img.set_int("n", n_);
    return img;
  }
  void merge_into_object(const ObjectImage& image,
                         const props::PropertySet&) override {
    if (const auto v = image.get_int("n")) n_ = *v;
  }
  [[nodiscard]] props::PropertySet data_properties() const override {
    props::PropertySet ps;
    ps.set("P", props::Domain::discrete({props::Value{std::string{"n"}}}));
    return ps;
  }
  [[nodiscard]] std::int64_t n() const { return n_; }

 private:
  std::int64_t n_ = 0;
};

class CounterView : public ViewAdapter {
 public:
  [[nodiscard]] props::PropertySet properties() const {
    props::PropertySet ps;
    ps.set("P", props::Domain::discrete({props::Value{std::string{"n"}}}));
    return ps;
  }
  [[nodiscard]] ObjectImage extract_from_view(
      const props::PropertySet&) override {
    ObjectImage img;
    img.set_int("n", n);
    return img;
  }
  void merge_into_view(const ObjectImage& image,
                       const props::PropertySet&) override {
    if (const auto v = image.get_int("n")) n = *v;
  }
  [[nodiscard]] const trigger::Env& variables() const override {
    return vars_;
  }

  std::int64_t n = 0;

 private:
  trigger::VariableStore vars_;
};

/// Two strong-mode views over one primary, fully traced and monitored.
struct MonitoredProtocol : ::testing::Test {
  void build(bool ignore_conflicts) {
    std::vector<net::NodeId> hosts;
    auto topo = net::Topology::lan(3, net::LinkSpec{}, &hosts);
    fabric = std::make_unique<net::SimFabric>(sim, std::move(topo));
    recorder.attach_sink(&monitor);
    fabric->set_trace_buffer(recorder.make_buffer("fabric"));

    dir_addr = net::Address{hosts[2], 1};
    DirectoryManager::Config dcfg;
    dcfg.trace = recorder.make_buffer("dm");
    dcfg.chaos_ignore_conflicts = ignore_conflicts;
    directory =
        std::make_unique<DirectoryManager>(*fabric, dir_addr, primary, dcfg);

    for (int i = 0; i < 2; ++i) {
      CacheManager::Config cfg;
      cfg.view_name = i == 0 ? "mon.View1" : "mon.View2";
      cfg.properties = views[i].properties();
      cfg.mode = Mode::kStrong;
      cfg.trace = recorder.make_buffer(i == 0 ? "cm.0" : "cm.1");
      cms[i] = std::make_unique<CacheManager>(
          *fabric, net::Address{hosts[i], 1}, dir_addr, views[i], cfg);
    }
  }

  /// One strong round-trip for view `i`: activate, bump, surrender.
  void work(int i) {
    bool active = false;
    cms[i]->start_use_image([&] { active = true; });
    sim.run();
    ASSERT_TRUE(active);
    views[i].n += 1;
    cms[i]->end_use_image(true);
    sim.run();
  }

  sim::Simulator sim;
  std::unique_ptr<net::SimFabric> fabric;
  obs::TraceRecorder recorder;
  InvariantMonitor monitor;
  CounterPrimary primary;
  net::Address dir_addr;
  std::unique_ptr<DirectoryManager> directory;
  CounterView views[2];
  std::unique_ptr<CacheManager> cms[2];
};

TEST_F(MonitoredProtocol, CleanStrongRunPassesWithRealCoverage) {
  if (!obs::kTraceEnabled) GTEST_SKIP() << "built with FLECC_TRACE=OFF";
  build(/*ignore_conflicts=*/false);
  sim.run();  // registration
  for (int round = 0; round < 3; ++round) {
    work(0);
    work(1);
  }
  for (int i = 0; i < 2; ++i) {
    bool killed = false;
    cms[i]->kill_image([&] { killed = true; });
    sim.run();
    ASSERT_TRUE(killed);
  }
  monitor.finalize();

  EXPECT_TRUE(monitor.violations().empty()) << monitor.health_report();
  // The run must have exercised the invariants for the PASS to mean
  // anything: exclusive grants, merges, causal stamps.
  EXPECT_GE(monitor.check_count(Invariant::kExclusivity), 6u);
  EXPECT_GE(monitor.check_count(Invariant::kExactlyOnceMerge), 6u);
  EXPECT_GE(monitor.check_count(Invariant::kCausality), 10u);
  EXPECT_EQ(primary.n(), 6);
}

TEST_F(MonitoredProtocol, I1FiresWhenTheDirectoryIgnoresConflicts) {
  if (!obs::kTraceEnabled) GTEST_SKIP() << "built with FLECC_TRACE=OFF";
  // Sabotaged directory: grants without invalidating conflicting
  // holders — the canonical exclusivity bug.
  build(/*ignore_conflicts=*/true);
  sim.run();
  work(0);
  work(1);  // granted while View1 still holds its copy
  monitor.finalize();
  EXPECT_GE(monitor.violation_count(Invariant::kExclusivity), 1u)
      << monitor.health_report();
}

// ---- trace-mutation negative harness (I2-I4) ---------------------------
//
// Record a clean run, then corrupt the stream the way a buggy protocol
// would have, and feed it to a fresh (offline) monitor — the same
// engine tools/flecc_check runs.

struct MutatedTrace : MonitoredProtocol {
  std::vector<obs::TraceEvent> record_clean_run() {
    build(/*ignore_conflicts=*/false);
    sim.run();
    // Strong-mode updates travel as dirty invalidate-acks; the final
    // kills matter because the I3 scan fires at a LATER completed
    // push/kill by the same agent.
    work(0);
    work(1);
    work(0);
    work(1);
    for (auto& cm : cms) {
      cm->kill_image();
      sim.run();
    }
    return recorder.snapshot();
  }
};

TEST_F(MutatedTrace, I2FiresOnReplayedMerge) {
  if (!obs::kTraceEnabled) GTEST_SKIP() << "built with FLECC_TRACE=OFF";
  auto events = record_clean_run();
  // A directory that forgot its dedup window applies some merge twice.
  auto it = std::find_if(events.begin(), events.end(),
                         [](const obs::TraceEvent& e) {
                           return e.kind == obs::EventKind::kMergeApplied;
                         });
  ASSERT_NE(it, events.end());
  obs::TraceEvent replay = *it;
  replay.at = events.back().at + 1;
  events.push_back(replay);

  InvariantMonitor offline;
  offline.run(events);
  EXPECT_GE(offline.violation_count(Invariant::kExactlyOnceMerge), 1u)
      << offline.health_report();
}

TEST_F(MutatedTrace, I3FiresOnDroppedMerge) {
  if (!obs::kTraceEnabled) GTEST_SKIP() << "built with FLECC_TRACE=OFF";
  auto events = record_clean_run();
  // A directory that lost an extraction: erase the FIRST merge (there
  // is a later completed push/kill from the same agent, so the echo
  // protocol should have re-delivered it — its absence is a real loss).
  auto it = std::find_if(events.begin(), events.end(),
                         [](const obs::TraceEvent& e) {
                           return e.kind == obs::EventKind::kMergeApplied;
                         });
  ASSERT_NE(it, events.end());
  events.erase(it);

  InvariantMonitor offline;
  offline.run(events);
  EXPECT_GE(offline.violation_count(Invariant::kNoLostUpdate), 1u)
      << offline.health_report();
}

TEST_F(MutatedTrace, I4FiresOnWeakGrantAfterStrongSwitch) {
  if (!obs::kTraceEnabled) GTEST_SKIP() << "built with FLECC_TRACE=OFF";
  auto events = record_clean_run();
  // A cache manager that kept serving weak pulls after acknowledging
  // the switch to STRONG: inject the completed pull after a switch.
  const std::uint64_t agent = obs::agent_key(cms[0]->address());
  const std::uint64_t span = obs::span_id(cms[0]->address(), 0xbeef);
  const sim::Time t = events.back().at;
  auto ev = [&](sim::Time at, obs::EventKind kind, std::uint64_t sp,
                const char* label) {
    return obs::make_event(at, kind, obs::Role::kCacheManager, agent, sp,
                           label);
  };
  events.push_back(ev(t + 1, obs::EventKind::kModeSwitch, 0, "strong"));
  events.push_back(ev(t + 2, obs::EventKind::kOpStarted, span, "pull"));
  events.push_back(ev(t + 3, obs::EventKind::kOpCompleted, span, "pull"));

  InvariantMonitor offline;
  offline.run(events);
  EXPECT_GE(offline.violation_count(Invariant::kModeQuiescence), 1u)
      << offline.health_report();
}

// ---- wire-string pinning ----------------------------------------------
//
// The monitor deliberately duplicates these literals (it must stay
// below the core layer: flecc_check links only flecc_obs). If a wire
// type is ever renamed, this test fails instead of the monitor silently
// going blind.
TEST(MonitorWireStrings, MatchTheProtocolMessageTypes) {
  EXPECT_STREQ(msg::kPushUpdate, "flecc.push_update");
  EXPECT_STREQ(msg::kKillReq, "flecc.kill_req");
  EXPECT_STREQ(msg::kRegisterReq, "flecc.register_req");
  EXPECT_STREQ(msg::kInvalidateAck, "flecc.invalidate_ack");
  EXPECT_STREQ(msg::kFetchReply, "flecc.fetch_reply");
  EXPECT_STREQ(msg::kInvalidateReq, "flecc.invalidate_req");
  EXPECT_STREQ(msg::kAcquireGrant, "flecc.acquire_grant");
}

}  // namespace
}  // namespace flecc::core
