// Reproduces the Figure-2 scenario of the paper: an original component C
// with property P = {x, y, z} and two strong-mode views V1 (P = {x, y})
// and V2 (P = {x, z}). V2's activation must invalidate V1, keeping a
// single active view among conflicting ones (one-copy serializability).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/cache_manager.hpp"
#include "core/directory_manager.hpp"
#include "net/sim_fabric.hpp"
#include "sim/simulator.hpp"

namespace flecc::core {
namespace {

/// The component's shared data: named slots x, y, z.
class SlotPrimary : public PrimaryAdapter {
 public:
  [[nodiscard]] ObjectImage extract_from_object(
      const props::PropertySet& vpl) const override {
    ObjectImage img;
    const props::Domain* scope = vpl.find("P");
    for (const auto& [slot, value] : slots_) {
      if (scope != nullptr && !scope->contains(props::Value{slot})) continue;
      img.set_int("slot." + slot, value);
    }
    return img;
  }
  void merge_into_object(const ObjectImage& image,
                         const props::PropertySet&) override {
    for (const auto& [key, value] : image) {
      if (key.rfind("slot.", 0) != 0) continue;
      if (const auto* iv = std::get_if<std::int64_t>(&value)) {
        slots_[key.substr(5)] = *iv;
      }
    }
  }
  [[nodiscard]] props::PropertySet data_properties() const override {
    props::PropertySet ps;
    ps.set("P", props::Domain::discrete({props::Value{std::string{"x"}},
                                         props::Value{std::string{"y"}},
                                         props::Value{std::string{"z"}}}));
    return ps;
  }
  [[nodiscard]] std::int64_t slot(const std::string& s) const {
    auto it = slots_.find(s);
    return it == slots_.end() ? 0 : it->second;
  }

 private:
  std::map<std::string, std::int64_t> slots_{{"x", 0}, {"y", 0}, {"z", 0}};
};

class SlotView : public ViewAdapter {
 public:
  explicit SlotView(std::vector<std::string> slots)
      : mine_(std::move(slots)) {}

  void write(const std::string& slot, std::int64_t v) { local_[slot] = v; }
  [[nodiscard]] std::int64_t read(const std::string& slot) const {
    auto it = local_.find(slot);
    return it == local_.end() ? 0 : it->second;
  }

  [[nodiscard]] props::PropertySet properties() const {
    std::set<props::Value> values;
    for (const auto& s : mine_) values.insert(props::Value{s});
    props::PropertySet ps;
    ps.set("P", props::Domain::discrete(std::move(values)));
    return ps;
  }

  [[nodiscard]] ObjectImage extract_from_view(
      const props::PropertySet&) override {
    ObjectImage img;
    for (const auto& [slot, value] : local_) {
      img.set_int("slot." + slot, value);
    }
    return img;
  }
  void merge_into_view(const ObjectImage& image,
                       const props::PropertySet&) override {
    for (const auto& [key, value] : image) {
      if (key.rfind("slot.", 0) != 0) continue;
      if (const auto* iv = std::get_if<std::int64_t>(&value)) {
        local_[key.substr(5)] = *iv;
      }
    }
  }
  [[nodiscard]] const trigger::Env& variables() const override {
    return vars_;
  }

 private:
  std::vector<std::string> mine_;
  std::map<std::string, std::int64_t> local_;
  trigger::VariableStore vars_;
};

struct Figure2 : ::testing::Test {
  Figure2() {
    std::vector<net::NodeId> hosts;
    auto topo = net::Topology::lan(3, net::LinkSpec{}, &hosts);
    fabric = std::make_unique<net::SimFabric>(sim, std::move(topo));
    trace.attach(*fabric);
    dir_addr = net::Address{hosts[2], 1};
    directory = std::make_unique<DirectoryManager>(*fabric, dir_addr, primary);

    CacheManager::Config cfg1;
    cfg1.view_name = "fig2.View1";
    cfg1.properties = v1_view.properties();
    cfg1.mode = Mode::kStrong;
    cm1 = std::make_unique<CacheManager>(*fabric, net::Address{hosts[0], 1},
                                         dir_addr, v1_view, cfg1);

    CacheManager::Config cfg2;
    cfg2.view_name = "fig2.View2";
    cfg2.properties = v2_view.properties();
    cfg2.mode = Mode::kStrong;
    cm2 = std::make_unique<CacheManager>(*fabric, net::Address{hosts[1], 1},
                                         dir_addr, v2_view, cfg2);
  }

  std::size_t count_type(const std::string& type) const {
    return static_cast<std::size_t>(
        std::count_if(trace.entries().begin(), trace.entries().end(),
                      [&](const net::TraceEntry& e) { return e.type == type; }));
  }

  sim::Simulator sim;
  std::unique_ptr<net::SimFabric> fabric;
  net::TraceRecorder trace;
  SlotPrimary primary;
  net::Address dir_addr;
  std::unique_ptr<DirectoryManager> directory;
  SlotView v1_view{{"x", "y"}};
  SlotView v2_view{{"x", "z"}};
  std::unique_ptr<CacheManager> cm1, cm2;
};

TEST_F(Figure2, ViewsConflictViaPropertyIntersection) {
  sim.run();
  ASSERT_TRUE(cm1->registered());
  ASSERT_TRUE(cm2->registered());
  // V1 ∩ V2 = {x} ≠ ∅ ⇒ dynConfl = 1 (Definitions 1-3).
  EXPECT_TRUE(directory->conflicts(cm1->id(), cm2->id()));
}

TEST_F(Figure2, SecondActivationInvalidatesFirst) {
  // Steps 1-7: V1 activates and works on the data.
  primary.merge_into_object(
      [] {
        ObjectImage img;
        img.set_int("slot.x", 10);
        img.set_int("slot.y", 20);
        img.set_int("slot.z", 30);
        return img;
      }(),
      props::PropertySet{});

  cm1->start_use_image();
  sim.run();
  ASSERT_TRUE(cm1->in_use());
  EXPECT_TRUE(directory->is_exclusive(cm1->id()));
  EXPECT_EQ(v1_view.read("x"), 10);
  EXPECT_EQ(v1_view.read("y"), 20);
  v1_view.write("x", 11);
  cm1->end_use_image(true);

  // Steps 8-19: V2 asks for the data; the directory invalidates V1,
  // merges its updates, and only then grants V2.
  bool v2_active = false;
  cm2->start_use_image([&] { v2_active = true; });
  sim.run();
  EXPECT_TRUE(v2_active);
  EXPECT_TRUE(directory->is_exclusive(cm2->id()));
  EXPECT_FALSE(directory->is_active(cm1->id()));
  EXPECT_FALSE(cm1->valid());
  // V1's update to x flowed through the primary into V2's fresh image.
  EXPECT_EQ(primary.slot("x"), 11);
  EXPECT_EQ(v2_view.read("x"), 11);
  EXPECT_EQ(v2_view.read("z"), 30);
  // The invalidation handshake is on the wire (Fig. 2 steps 12-13).
  EXPECT_EQ(count_type(msg::kInvalidateReq), 1u);
  EXPECT_EQ(count_type(msg::kInvalidateAck), 1u);
  cm2->end_use_image(false);
}

TEST_F(Figure2, InvalidationWaitsForMutualExclusionSection) {
  cm1->start_use_image();
  sim.run();
  ASSERT_TRUE(cm1->in_use());
  v1_view.write("y", 99);

  bool v2_active = false;
  cm2->start_use_image([&] { v2_active = true; });
  // Bounded run: a full run() would eventually fire the directory's
  // crash-protection invalidation timeout.
  sim.run_until(sim.now() + sim::msec(100));
  // V1 is inside startUse/endUse: the invalidation must be deferred
  // (§4.2: no merge/extract while the view works on the data).
  EXPECT_FALSE(v2_active);
  EXPECT_TRUE(cm1->in_use());
  EXPECT_GE(cm1->stats().get("invalidate.deferred"), 1u);

  cm1->end_use_image(true);
  sim.run();
  EXPECT_TRUE(v2_active);
  EXPECT_EQ(primary.slot("y"), 99);
}

TEST_F(Figure2, AlternatingOwnershipNeverOverlaps) {
  // Ping-pong activation; at every grant exactly one view is exclusive.
  for (int round = 0; round < 5; ++round) {
    bool done1 = false;
    cm1->start_use_image([&] { done1 = true; });
    sim.run();
    ASSERT_TRUE(done1);
    EXPECT_TRUE(directory->is_exclusive(cm1->id()));
    EXPECT_FALSE(directory->is_exclusive(cm2->id()));
    cm1->end_use_image(false);

    bool done2 = false;
    cm2->start_use_image([&] { done2 = true; });
    sim.run();
    ASSERT_TRUE(done2);
    EXPECT_TRUE(directory->is_exclusive(cm2->id()));
    EXPECT_FALSE(directory->is_exclusive(cm1->id()));
    cm2->end_use_image(false);
  }
}

TEST_F(Figure2, TeardownFollowsSteps20And21) {
  cm1->start_use_image();
  sim.run();
  v1_view.write("x", 5);
  cm1->end_use_image(true);
  bool killed = false;
  cm1->kill_image([&] { killed = true; });
  sim.run();
  EXPECT_TRUE(killed);
  EXPECT_EQ(primary.slot("x"), 5);
  EXPECT_EQ(count_type(msg::kKillReq), 1u);
  EXPECT_EQ(count_type(msg::kKillAck), 1u);
}

TEST_F(Figure2, NonOverlappingViewsWouldNotConflict) {
  // Control: replace V2's property set with {z} only — no conflict, so
  // activation does not invalidate V1.
  SlotView v3_view{{"z"}};
  CacheManager::Config cfg;
  cfg.view_name = "fig2.View3";
  cfg.properties = v3_view.properties();
  cfg.mode = Mode::kStrong;
  const net::NodeId extra = fabric->topology().add_node();
  const net::NodeId hub =
      static_cast<net::NodeId>(3);  // lan(3) puts the switch at index 3
  fabric->topology().add_link(extra, hub, net::LinkSpec{});
  CacheManager cm3(*fabric, net::Address{extra, 1}, dir_addr, v3_view, cfg);

  cm1->start_use_image();
  sim.run();
  ASSERT_TRUE(cm1->in_use());

  bool v3_active = false;
  cm3.start_use_image([&] { v3_active = true; });
  sim.run();
  EXPECT_TRUE(v3_active);  // granted without touching V1
  EXPECT_TRUE(cm1->in_use());
  EXPECT_TRUE(directory->is_exclusive(cm1->id()));
  EXPECT_TRUE(directory->is_exclusive(cm3.id()));
  EXPECT_EQ(count_type(msg::kInvalidateReq), 0u);
  cm1->end_use_image(false);
  cm3.end_use_image(false);
}

}  // namespace
}  // namespace flecc::core
