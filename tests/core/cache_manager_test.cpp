#include "core/cache_manager.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace flecc::core {
namespace {

using testing::Harness;

TEST(CacheManagerTest, OpsIssuedBeforeRegistrationComplete) {
  Harness h(1);
  auto m = h.make_member(0, 9);
  bool inited = false;
  // Enqueued while the RegisterReq is still in flight.
  m.cm->init_image([&] { inited = true; });
  EXPECT_FALSE(inited);
  h.run();
  EXPECT_TRUE(inited);
  EXPECT_TRUE(m.cm->registered());
  EXPECT_TRUE(m.cm->valid());
}

TEST(CacheManagerTest, OpsAreSerializedFifo) {
  Harness h(1);
  auto m = h.make_member(0, 9);
  std::vector<int> order;
  m.cm->init_image([&] { order.push_back(1); });
  m.cm->pull_image([&] { order.push_back(2); });
  m.cm->push_image([&] { order.push_back(3); });
  h.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(CacheManagerTest, StartUseFastPathSendsNoMessages) {
  Harness h(1);
  auto m = h.make_member(0, 9);
  m.cm->init_image();
  h.run();
  const auto sent_before = h.fabric_->sent_count();
  bool used = false;
  m.cm->start_use_image([&] { used = true; });
  EXPECT_TRUE(used);  // completes synchronously
  EXPECT_TRUE(m.cm->in_use());
  m.cm->end_use_image(false);
  EXPECT_FALSE(m.cm->in_use());
  EXPECT_EQ(h.fabric_->sent_count(), sent_before);
  EXPECT_EQ(m.cm->stats().get("start_use.local"), 1u);
}

TEST(CacheManagerTest, StartUseRevalidatesWhenInvalid) {
  Harness h(1);
  auto m = h.make_member(0, 9);
  // No init: the image is invalid, so startUse pulls first.
  bool used = false;
  m.cm->start_use_image([&] { used = true; });
  EXPECT_FALSE(used);
  h.run();
  EXPECT_TRUE(used);
  EXPECT_TRUE(m.cm->valid());
  EXPECT_TRUE(m.cm->in_use());
  EXPECT_EQ(m.cm->stats().get("start_use.remote"), 1u);
  m.cm->end_use_image(false);
}

TEST(CacheManagerTest, NestedStartUseThrows) {
  Harness h(1);
  auto m = h.make_member(0, 9);
  m.cm->init_image();
  h.run();
  m.cm->start_use_image();
  EXPECT_THROW(m.cm->start_use_image(), std::logic_error);
  m.cm->end_use_image(false);
}

TEST(CacheManagerTest, EndUseWithoutStartThrows) {
  Harness h(1);
  auto m = h.make_member(0, 9);
  EXPECT_THROW(m.cm->end_use_image(false), std::logic_error);
}

TEST(CacheManagerTest, EndUseMarksDirty) {
  Harness h(1);
  auto m = h.make_member(0, 9);
  m.cm->init_image();
  h.run();
  m.cm->start_use_image();
  EXPECT_FALSE(m.cm->dirty());
  m.cm->end_use_image(true);
  EXPECT_TRUE(m.cm->dirty());
}

TEST(CacheManagerTest, ExplicitPushClearsDirty) {
  Harness h(1);
  auto m = h.make_member(0, 9);
  m.cm->init_image();
  h.run();
  m.view->increment(0, 4);
  m.cm->start_use_image();
  m.cm->end_use_image(true);
  m.cm->push_image();
  h.run();
  EXPECT_FALSE(m.cm->dirty());
  EXPECT_EQ(h.primary_.cell(0), 4);
}

TEST(CacheManagerTest, RejectedRegistrationFlushesOps) {
  Harness h(1, /*n_cells=*/10);
  auto bad = h.make_member(0, 50);  // not a subset → rejected
  bool init_done = false, pull_done = false;
  bad.cm->init_image([&] { init_done = true; });
  bad.cm->pull_image([&] { pull_done = true; });
  h.run();
  EXPECT_TRUE(bad.cm->rejected());
  EXPECT_TRUE(init_done);
  EXPECT_TRUE(pull_done);
  EXPECT_FALSE(bad.cm->valid());
  // Ops issued after rejection also complete immediately.
  bool late = false;
  bad.cm->pull_image([&] { late = true; });
  EXPECT_TRUE(late);
}

TEST(CacheManagerTest, KillFlushesQueuedOps) {
  Harness h(1);
  auto m = h.make_member(0, 9);
  m.cm->init_image();
  bool killed = false, late_pull = false;
  m.cm->kill_image([&] { killed = true; });
  m.cm->pull_image([&] { late_pull = true; });
  h.run();
  EXPECT_TRUE(killed);
  EXPECT_TRUE(late_pull);
  EXPECT_FALSE(m.cm->alive());
}

TEST(CacheManagerTest, AutoPullTriggerFires) {
  Harness h(1);
  CacheManager::Config cfg;
  cfg.pull_trigger = "(t > 400)";  // pull every ~400ms
  cfg.trigger_poll = sim::msec(100);
  auto m = h.make_member(0, 9, cfg);
  m.cm->init_image();
  h.run();
  h.run_until(sim::msec(2000));
  const auto auto_pulls = m.cm->stats().get("auto.pull");
  EXPECT_GE(auto_pulls, 3u);
  EXPECT_LE(auto_pulls, 5u);
}

TEST(CacheManagerTest, AutoPushTriggerRequiresDirty) {
  Harness h(1);
  CacheManager::Config cfg;
  cfg.push_trigger = "(t > 300)";
  cfg.trigger_poll = sim::msec(100);
  auto m = h.make_member(0, 9, cfg);
  m.cm->init_image();
  h.run();
  h.run_until(sim::msec(1000));
  EXPECT_EQ(m.cm->stats().get("auto.push"), 0u);  // never dirty

  m.view->increment(3, 2);
  m.cm->start_use_image();
  m.cm->end_use_image(true);
  h.run_until(sim::msec(2000));
  EXPECT_GE(m.cm->stats().get("auto.push"), 1u);
  EXPECT_EQ(h.primary_.cell(3), 2);
}

TEST(CacheManagerTest, PushTriggerConditionsOnViewVariables) {
  Harness h(1);
  CacheManager::Config cfg;
  cfg.push_trigger = "(pendingOps >= 3)";
  cfg.trigger_poll = sim::msec(100);
  auto m = h.make_member(0, 9, cfg);
  m.cm->init_image();
  h.run();
  m.view->increment(0);
  m.cm->start_use_image();
  m.cm->end_use_image(true);
  h.run_until(sim::msec(1000));
  EXPECT_EQ(m.cm->stats().get("auto.push"), 0u);  // only 1 pending op
  m.view->increment(1);
  m.view->increment(2);
  m.cm->start_use_image();
  h.run();  // start_use may need the queue
  m.cm->end_use_image(true);
  h.run_until(sim::msec(2000));
  EXPECT_GE(m.cm->stats().get("auto.push"), 1u);
}

TEST(CacheManagerTest, TriggersNeverFireDuringUseSection) {
  Harness h(1);
  CacheManager::Config cfg;
  cfg.pull_trigger = "true";  // would fire at every poll
  cfg.trigger_poll = sim::msec(50);
  auto m = h.make_member(0, 9, cfg);
  m.cm->init_image();
  h.run();
  m.cm->start_use_image();
  const auto before = m.cm->stats().get("auto.pull");
  h.run_until(h.sim_.now() + sim::msec(500));
  EXPECT_EQ(m.cm->stats().get("auto.pull"), before);  // suppressed
  m.cm->end_use_image(false);
  h.run_until(h.sim_.now() + sim::msec(500));
  EXPECT_GT(m.cm->stats().get("auto.pull"), before);  // resumed
}

TEST(CacheManagerTest, FetchDeferredDuringUseSection) {
  Harness h(2);
  auto a = h.make_member(0, 9);
  CacheManager::Config cfg;
  cfg.validity_trigger = "false";
  auto b = h.make_member(0, 9, cfg);
  a.cm->init_image();
  b.cm->init_image();
  h.run();

  a.view->increment(2, 9);
  a.cm->start_use_image();
  h.run();

  // b pulls while a is mid-use: the fetch must wait for a's endUse.
  // (Bounded run_until: a full run() would eventually fire the
  // directory's crash-protection fetch timeout and answer with stale
  // data, which is the intended behavior for crashed views only.)
  bool pulled = false;
  b.cm->pull_image([&] { pulled = true; });
  h.run_until(h.sim_.now() + sim::msec(100));
  EXPECT_FALSE(pulled);
  EXPECT_GE(a.cm->stats().get("fetch.deferred"), 1u);

  a.cm->end_use_image(true);
  h.run();
  EXPECT_TRUE(pulled);
  EXPECT_EQ(b.view->base(2), 9);
}

TEST(CacheManagerTest, ModeSwitchToStrongInvalidatesLocalCopy) {
  Harness h(1);
  auto m = h.make_member(0, 9);
  m.cm->init_image();
  h.run();
  EXPECT_TRUE(m.cm->valid());
  m.cm->set_mode(Mode::kStrong);
  h.run();
  EXPECT_EQ(m.cm->mode(), Mode::kStrong);
  EXPECT_FALSE(m.cm->valid());

  // startUse must acquire now.
  bool used = false;
  m.cm->start_use_image([&] { used = true; });
  h.run();
  EXPECT_TRUE(used);
  EXPECT_TRUE(m.cm->exclusive());
  m.cm->end_use_image(false);
}

TEST(CacheManagerTest, ModeSwitchBackToWeakKeepsCopyValid) {
  Harness h(1);
  CacheManager::Config cfg;
  cfg.mode = Mode::kStrong;
  auto m = h.make_member(0, 9, cfg);
  m.cm->start_use_image();
  h.run();
  m.cm->end_use_image(false);
  m.cm->set_mode(Mode::kWeak);
  h.run();
  EXPECT_EQ(m.cm->mode(), Mode::kWeak);
  EXPECT_TRUE(m.cm->valid());
  EXPECT_FALSE(m.cm->exclusive());
}

}  // namespace
}  // namespace flecc::core
