#include "core/object_image.hpp"

#include <gtest/gtest.h>

namespace flecc::core {
namespace {

TEST(ObjectImageTest, StartsEmpty) {
  ObjectImage img;
  EXPECT_TRUE(img.empty());
  EXPECT_EQ(img.size(), 0u);
  EXPECT_EQ(img.version(), 0u);
}

TEST(ObjectImageTest, TypedSetAndGet) {
  ObjectImage img;
  img.set_int("count", 42);
  img.set_real("ratio", 0.5);
  img.set_str("name", "LAX");
  EXPECT_EQ(img.get_int("count"), 42);
  EXPECT_DOUBLE_EQ(*img.get_real("ratio"), 0.5);
  EXPECT_EQ(img.get_str("name"), "LAX");
  EXPECT_EQ(img.size(), 3u);
}

TEST(ObjectImageTest, GetWrongTypeReturnsNullopt) {
  ObjectImage img;
  img.set_str("name", "x");
  EXPECT_FALSE(img.get_int("name").has_value());
  EXPECT_FALSE(img.get_real("name").has_value());
  img.set_int("n", 7);
  EXPECT_FALSE(img.get_str("n").has_value());
}

TEST(ObjectImageTest, IntWidensToReal) {
  ObjectImage img;
  img.set_int("n", 7);
  EXPECT_DOUBLE_EQ(*img.get_real("n"), 7.0);
}

TEST(ObjectImageTest, MissingKeyReturnsNullopt) {
  ObjectImage img;
  EXPECT_FALSE(img.has("nope"));
  EXPECT_EQ(img.find("nope"), nullptr);
  EXPECT_FALSE(img.get_int("nope").has_value());
}

TEST(ObjectImageTest, EraseRemoves) {
  ObjectImage img;
  img.set_int("a", 1);
  EXPECT_TRUE(img.erase("a"));
  EXPECT_FALSE(img.erase("a"));
  EXPECT_TRUE(img.empty());
}

TEST(ObjectImageTest, OverlayOverwritesAndCreates) {
  ObjectImage base;
  base.set_int("a", 1);
  base.set_int("b", 2);
  ObjectImage delta;
  delta.set_int("b", 20);
  delta.set_int("c", 30);
  EXPECT_EQ(base.overlay(delta), 2u);
  EXPECT_EQ(base.get_int("a"), 1);
  EXPECT_EQ(base.get_int("b"), 20);
  EXPECT_EQ(base.get_int("c"), 30);
}

TEST(ObjectImageTest, VersionRoundTrips) {
  ObjectImage img;
  img.set_version(17);
  EXPECT_EQ(img.version(), 17u);
}

TEST(ObjectImageTest, WireSizeGrowsWithContent) {
  ObjectImage img;
  const auto empty_size = img.wire_size();
  img.set_int("k", 1);
  const auto one = img.wire_size();
  img.set_str("long_key_name", std::string(100, 'x'));
  const auto two = img.wire_size();
  EXPECT_LT(empty_size, one);
  EXPECT_LT(one, two);
  EXPECT_GE(two - one, 100u);
}

TEST(ObjectImageTest, EqualityAndToString) {
  ObjectImage a;
  a.set_int("x", 1);
  ObjectImage b;
  b.set_int("x", 1);
  EXPECT_EQ(a, b);
  b.set_int("x", 2);
  EXPECT_NE(a, b);
  EXPECT_NE(a.to_string().find("x=1"), std::string::npos);
}

TEST(ObjectImageTest, IterationIsKeyOrdered) {
  ObjectImage img;
  img.set_int("b", 2);
  img.set_int("a", 1);
  std::vector<std::string> keys;
  for (const auto& [k, v] : img) {
    (void)v;
    keys.push_back(k);
  }
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace flecc::core
