// Wire-size accounting of the protocol message layer.
#include "core/messages.hpp"

#include <gtest/gtest.h>

namespace flecc::core::msg {
namespace {

TEST(WireSizeTest, HeaderOnlyMessages) {
  EXPECT_EQ(wire_size(InitReq{}), kHeaderBytes);
  EXPECT_EQ(wire_size(PullReq{}), kHeaderBytes);
  EXPECT_EQ(wire_size(PushAck{}), kHeaderBytes);
  EXPECT_EQ(wire_size(AcquireReq{}), kHeaderBytes);
  EXPECT_EQ(wire_size(InvalidateReq{}), kHeaderBytes);
  EXPECT_EQ(wire_size(FetchReq{}), kHeaderBytes);
  EXPECT_EQ(wire_size(ModeChangeReq{}), kHeaderBytes);
  EXPECT_EQ(wire_size(ModeChangeAck{}), kHeaderBytes);
  EXPECT_EQ(wire_size(KillAck{}), kHeaderBytes);
  EXPECT_EQ(wire_size(UpdateNotify{}), kHeaderBytes);
}

TEST(WireSizeTest, ImagesAddTheirSize) {
  InitReply reply;
  EXPECT_EQ(wire_size(reply), kHeaderBytes + reply.image.wire_size());
  reply.image.set_int("f.100.res", 7);
  reply.image.set_str("name", "flecc");
  EXPECT_EQ(wire_size(reply), kHeaderBytes + reply.image.wire_size());
  EXPECT_GT(wire_size(reply), kHeaderBytes + 16);
}

TEST(WireSizeTest, RegisterCarriesEverything) {
  RegisterReq req;
  const auto empty = wire_size(req);
  req.view_name = "air.TravelAgent";
  req.push_trigger = "(t > 1500)";
  req.pull_trigger = "(t > 1500)";
  req.validity_trigger = "(t > 1500)";
  req.properties.set("Flights", props::Domain::interval(100, 199));
  const auto full = wire_size(req);
  EXPECT_GT(full, empty);
  EXPECT_GE(full - empty, req.view_name.size() + 3 * 10);
}

TEST(WireSizeTest, PropertySetSizes) {
  props::PropertySet empty;
  EXPECT_EQ(wire_size(empty), 4u);

  props::PropertySet interval;
  interval.set("p", props::Domain::interval(0, 1000000));
  EXPECT_EQ(wire_size(interval), 4u + 1 + 2 + 16);

  props::PropertySet discrete;
  discrete.set("p", props::Domain::discrete(
                        {props::Value{std::int64_t{1}},
                         props::Value{std::string{"west"}}}));
  // 4 + name(1+2) + 2 + int(8) + string(4+2)
  EXPECT_EQ(wire_size(discrete), 4u + 3 + 2 + 8 + 6);
}

TEST(WireSizeTest, DiscreteDomainsScaleWithValues) {
  props::PropertySet small, large;
  small.set("Flights", props::Domain::discrete_range(0, 9));
  large.set("Flights", props::Domain::discrete_range(0, 99));
  EXPECT_LT(wire_size(small), wire_size(large));
  EXPECT_EQ(wire_size(large) - wire_size(small), 90u * 8u);
}

TEST(WireSizeTest, DirtyKillBiggerThanCleanKill) {
  KillReq clean;
  KillReq dirty;
  dirty.dirty = true;
  dirty.final_image.set_int("d.100", 5);
  EXPECT_GT(wire_size(dirty), wire_size(clean));
}

}  // namespace
}  // namespace flecc::core::msg
