#include "core/directory_manager.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace flecc::core {
namespace {

using testing::Harness;
using testing::cells;

TEST(DirectoryManagerTest, RegistersViewsWithDistinctIds) {
  Harness h(2);
  auto a = h.make_member(0, 9);
  auto b = h.make_member(10, 19);
  h.run();
  EXPECT_TRUE(a.cm->registered());
  EXPECT_TRUE(b.cm->registered());
  EXPECT_NE(a.cm->id(), b.cm->id());
  EXPECT_EQ(h.directory_->registered_count(), 2u);
}

TEST(DirectoryManagerTest, RejectsNonSubsetProperties) {
  Harness h(1, /*n_cells=*/10);  // primary covers cells [0, 9]
  auto bad = h.make_member(5, 20);  // overhangs the component's data
  h.run();
  EXPECT_FALSE(bad.cm->registered());
  EXPECT_TRUE(bad.cm->rejected());
  EXPECT_NE(bad.cm->reject_reason().find("subset"), std::string::npos);
  EXPECT_EQ(h.directory_->registered_count(), 0u);
}

TEST(DirectoryManagerTest, RejectsMalformedValidityTrigger) {
  Harness h(1);
  CacheManager::Config cfg;
  cfg.validity_trigger = "1 +";
  auto bad = h.make_member(0, 9, cfg);
  h.run();
  EXPECT_TRUE(bad.cm->rejected());
  EXPECT_NE(bad.cm->reject_reason().find("validity"), std::string::npos);
}

TEST(DirectoryManagerTest, RejectsEmptyViewName) {
  Harness h(1);
  CacheManager::Config cfg;
  cfg.view_name = "";
  auto view = std::make_unique<testing::KvView>(0, 5);
  cfg.properties = view->properties();
  CacheManager cm(*h.fabric_, net::Address{h.hosts_[0], 1}, h.dir_addr_,
                  *view, cfg);
  h.run();
  EXPECT_TRUE(cm.rejected());
}

TEST(DirectoryManagerTest, InitDeliversScopedImage) {
  Harness h(1);
  h.primary_.merge_into_object(
      [] {
        ObjectImage img;
        img.set_int(testing::cell_key(3), 42);
        img.set_int(testing::cell_key(50), 7);
        return img;
      }(),
      cells(0, 99));

  auto m = h.make_member(0, 9);
  bool done = false;
  m.cm->init_image([&] { done = true; });
  h.run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(m.cm->valid());
  EXPECT_EQ(m.view->base(3), 42);   // in scope
  EXPECT_EQ(m.view->base(50), 0);   // out of scope: never shipped
  EXPECT_TRUE(h.directory_->is_active(m.cm->id()));
}

TEST(DirectoryManagerTest, PushMergesAndAdvancesVersion) {
  Harness h(1);
  auto m = h.make_member(0, 9);
  m.cm->init_image();
  h.run();
  const Version v0 = h.directory_->version();
  m.view->increment(2, 5);
  m.cm->push_image();
  h.run();
  EXPECT_EQ(h.primary_.cell(2), 5);
  EXPECT_EQ(h.directory_->version(), v0 + 1);
  EXPECT_FALSE(m.cm->dirty());
  EXPECT_EQ(m.cm->last_version(), v0 + 1);
}

TEST(DirectoryManagerTest, QualityCountsRemoteConflictingUpdates) {
  Harness h(2);
  auto a = h.make_member(0, 9);
  auto b = h.make_member(5, 14);  // conflicts with a
  a.cm->init_image();
  b.cm->init_image();
  h.run();

  a.view->increment(6);
  a.cm->push_image();
  h.run();
  EXPECT_EQ(h.directory_->quality(a.cm->id()), 0u);  // own update
  EXPECT_EQ(h.directory_->quality(b.cm->id()), 1u);  // remote unseen

  b.cm->pull_image();
  h.run();
  EXPECT_EQ(h.directory_->quality(b.cm->id()), 0u);  // pull resets
  EXPECT_EQ(b.cm->last_pull_unseen(), 1u);
  EXPECT_EQ(b.view->base(6), 1);  // the update arrived
}

TEST(DirectoryManagerTest, NonConflictingViewsUnaffected) {
  Harness h(2);
  auto a = h.make_member(0, 9);
  auto b = h.make_member(20, 29);  // disjoint
  a.cm->init_image();
  b.cm->init_image();
  h.run();
  EXPECT_FALSE(h.directory_->conflicts(a.cm->id(), b.cm->id()));
  a.view->increment(1);
  a.cm->push_image();
  h.run();
  EXPECT_EQ(h.directory_->quality(b.cm->id()), 0u);
}

TEST(DirectoryManagerTest, ConflictingViewsListed) {
  Harness h(3);
  auto a = h.make_member(0, 9);
  auto b = h.make_member(5, 14);
  auto c = h.make_member(50, 59);
  a.cm->init_image();
  b.cm->init_image();
  c.cm->init_image();
  h.run();
  const auto conf = h.directory_->conflicting_views(a.cm->id());
  ASSERT_EQ(conf.size(), 1u);
  EXPECT_EQ(conf[0], b.cm->id());
}

TEST(DirectoryManagerTest, ValidityFalseDemandFetchesDirtyViews) {
  Harness h(2);
  auto a = h.make_member(0, 9);
  CacheManager::Config cfg;
  cfg.validity_trigger = "false";  // primary data is never good enough
  auto b = h.make_member(0, 9, cfg);
  a.cm->init_image();
  b.cm->init_image();
  h.run();

  // a works locally without pushing.
  a.view->increment(4, 3);
  a.cm->start_use_image();
  h.run();
  a.cm->end_use_image(true);
  h.run();

  // b's pull must chase a's unpushed update.
  b.cm->pull_image();
  h.run();
  EXPECT_EQ(b.view->base(4), 3);
  EXPECT_EQ(h.primary_.cell(4), 3);
  EXPECT_GE(h.fabric_->counters().get("msg.sent.flecc.fetch_req"), 1u);
  EXPECT_GE(h.directory_->stats().get("op.pull.fetch_round"), 1u);
}

TEST(DirectoryManagerTest, ValidityTrueSkipsFetch) {
  Harness h(2);
  auto a = h.make_member(0, 9);
  CacheManager::Config cfg;
  cfg.validity_trigger = "true";
  auto b = h.make_member(0, 9, cfg);
  a.cm->init_image();
  b.cm->init_image();
  h.run();
  a.view->increment(4, 3);
  b.cm->pull_image();
  h.run();
  EXPECT_EQ(h.fabric_->counters().get("msg.sent.flecc.fetch_req"), 0u);
  EXPECT_EQ(b.view->base(4), 0);  // a's local work not chased
}

TEST(DirectoryManagerTest, ValidityMetadataVariables) {
  Harness h(2);
  auto a = h.make_member(0, 9);
  // Fetch only when the requester has actually missed something.
  CacheManager::Config cfg;
  cfg.validity_trigger = "(_unseen == 0)";
  auto b = h.make_member(0, 9, cfg);
  a.cm->init_image();
  b.cm->init_image();
  h.run();

  b.cm->pull_image();
  h.run();
  EXPECT_EQ(h.fabric_->counters().get("msg.sent.flecc.fetch_req"), 0u);

  a.view->increment(1);
  a.cm->push_image();
  h.run();
  b.cm->pull_image();  // now _unseen == 1 → fetch round
  h.run();
  EXPECT_GE(h.fabric_->counters().get("msg.sent.flecc.fetch_req"), 1u);
}

TEST(DirectoryManagerTest, StaticMapOverridesDynamicConflict) {
  Harness h(2);
  StaticMap sm;
  sm.set("kv.View", "kv.View", Relation::kNoConflict);
  h.directory_->set_static_map(std::move(sm));
  auto a = h.make_member(0, 9);
  auto b = h.make_member(0, 9);  // overlapping data, but statically cleared
  a.cm->init_image();
  b.cm->init_image();
  h.run();
  EXPECT_FALSE(h.directory_->conflicts(a.cm->id(), b.cm->id()));
  a.view->increment(1);
  a.cm->push_image();
  h.run();
  EXPECT_EQ(h.directory_->quality(b.cm->id()), 0u);
}

TEST(DirectoryManagerTest, StaticMapForcesConflict) {
  Harness h(2);
  StaticMap sm;
  sm.set("kv.View", "kv.View", Relation::kConflict);
  h.directory_->set_static_map(std::move(sm));
  auto a = h.make_member(0, 9);
  auto b = h.make_member(90, 99);  // disjoint data, statically conflicting
  a.cm->init_image();
  b.cm->init_image();
  h.run();
  EXPECT_TRUE(h.directory_->conflicts(a.cm->id(), b.cm->id()));
}

TEST(DirectoryManagerTest, KillMergesFinalImage) {
  Harness h(1);
  auto m = h.make_member(0, 9);
  m.cm->init_image();
  h.run();
  m.view->increment(7, 2);
  m.cm->start_use_image();
  h.run();
  m.cm->end_use_image(true);
  bool done = false;
  m.cm->kill_image([&] { done = true; });
  h.run();
  EXPECT_TRUE(done);
  EXPECT_FALSE(m.cm->alive());
  EXPECT_EQ(h.primary_.cell(7), 2);
  EXPECT_EQ(h.directory_->registered_count(), 0u);
}

TEST(DirectoryManagerTest, ModeChangeUpdatesDirectoryState) {
  Harness h(1);
  auto m = h.make_member(0, 9);
  m.cm->init_image();
  h.run();
  EXPECT_EQ(h.directory_->mode_of(m.cm->id()), Mode::kWeak);
  m.cm->set_mode(Mode::kStrong);
  h.run();
  EXPECT_EQ(h.directory_->mode_of(m.cm->id()), Mode::kStrong);
  EXPECT_FALSE(h.directory_->is_active(m.cm->id()));  // must re-acquire
  EXPECT_FALSE(m.cm->valid());
}

TEST(DirectoryManagerTest, ReadOnlyPullSkipsFetchWithRwSemantics) {
  DirectoryManager::Config dir_cfg;
  dir_cfg.use_rw_semantics = true;
  Harness h(2, 100, dir_cfg);
  auto a = h.make_member(0, 9);
  CacheManager::Config cfg;
  cfg.validity_trigger = "false";
  auto b = h.make_member(0, 9, cfg);
  a.cm->init_image();
  b.cm->init_image();
  h.run();
  a.view->increment(1);

  b.cm->set_intent(AccessIntent::kReadOnly);
  b.cm->pull_image();
  h.run();
  EXPECT_EQ(h.fabric_->counters().get("msg.sent.flecc.fetch_req"), 0u);
  EXPECT_EQ(h.directory_->stats().get("op.pull.ro_shortcut"), 1u);

  b.cm->set_intent(AccessIntent::kReadWrite);
  b.cm->pull_image();
  h.run();
  EXPECT_GE(h.fabric_->counters().get("msg.sent.flecc.fetch_req"), 1u);
}

TEST(DirectoryManagerTest, NotifyOnUpdateReachesConflictingViewsOnly) {
  DirectoryManager::Config dir_cfg;
  dir_cfg.notify_on_update = true;
  Harness h(3, 100, dir_cfg);
  auto a = h.make_member(0, 9);
  auto b = h.make_member(0, 9);
  auto c = h.make_member(50, 59);
  a.cm->init_image();
  b.cm->init_image();
  c.cm->init_image();
  h.run();
  a.view->increment(1);
  a.cm->push_image();
  h.run();
  EXPECT_EQ(b.cm->notifies_received(), 1u);
  EXPECT_EQ(c.cm->notifies_received(), 0u);
  EXPECT_EQ(a.cm->notifies_received(), 0u);
}

TEST(DirectoryManagerTest, FetchTimeoutProceedsWithoutCrashedView) {
  DirectoryManager::Config dir_cfg;
  dir_cfg.fetch_timeout = sim::msec(50);
  Harness h(2, 100, dir_cfg);
  auto a = h.make_member(0, 9);
  CacheManager::Config cfg;
  cfg.validity_trigger = "false";
  auto b = h.make_member(0, 9, cfg);
  a.cm->init_image();
  b.cm->init_image();
  h.run();

  // Simulate a crash of a: its endpoint vanishes without deregistering.
  h.fabric_->unbind(a.cm->address());

  bool done = false;
  b.cm->pull_image([&] { done = true; });
  h.run();
  EXPECT_TRUE(done);  // timeout let the pull complete
  EXPECT_GE(h.directory_->stats().get("op.fetch.timeout"), 1u);
}

TEST(DirectoryManagerTest, MergeLogPruneKeepsQualityForLiveViews) {
  DirectoryManager::Config dir_cfg;
  dir_cfg.merge_log_cap = 8;
  Harness h(2, 100, dir_cfg);
  auto a = h.make_member(0, 9);
  auto b = h.make_member(0, 9);
  a.cm->init_image();
  b.cm->init_image();
  h.run();
  for (int i = 0; i < 20; ++i) {
    a.view->increment(1);
    a.cm->push_image();
    h.run();
  }
  // b never pulled: every one of a's 20 merges is unseen, and pruning
  // must not have eaten records b still needs.
  EXPECT_EQ(h.directory_->quality(b.cm->id()), 20u);
}

}  // namespace
}  // namespace flecc::core
