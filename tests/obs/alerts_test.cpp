// AlertEngine: rule-text parsing (both directions), sustain counting,
// the raise/clear lifecycle per labeled series, trace-event emission,
// and the stale-series sweep that clears alerts whose series vanished.
#include "obs/alerts.hpp"

#include <gtest/gtest.h>

#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

using flecc::obs::ActiveAlert;
using flecc::obs::AlertEngine;
using flecc::obs::AlertRule;
using flecc::obs::EventKind;
using flecc::obs::SeriesId;
using flecc::obs::SeriesKind;
using flecc::obs::SeriesSample;
using flecc::obs::TelemetryWindow;
using flecc::sim::msec;

namespace {

/// Hand-build a closed window with the given counter readings
/// (value + rate pairs) so the engine can be tested without a
/// TimeSeriesRegistry in the loop.
TelemetryWindow window(std::uint64_t index,
                       std::vector<std::pair<SeriesId, SeriesSample>> rows) {
  TelemetryWindow w;
  w.index = index;
  w.start = msec(100) * index;
  w.end = msec(100) * (index + 1);
  for (auto& [id, s] : rows) w.series.emplace(std::move(id), s);
  return w;
}

SeriesSample counter(double value, double rate) {
  SeriesSample s;
  s.kind = SeriesKind::kCounter;
  s.value = value;
  s.rate = rate;
  s.delta = 0;
  return s;
}

SeriesSample gauge(double value) {
  SeriesSample s;
  s.kind = SeriesKind::kGauge;
  s.value = value;
  return s;
}

}  // namespace

// ---- parsing ---------------------------------------------------------------

TEST(AlertRuleTest, ParsesFullSyntax) {
  const auto r =
      AlertRule::parse("breaker-storm: cm.breaker.open/s > 0.5 for 3");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->name, "breaker-storm");
  EXPECT_EQ(r->metric, "cm.breaker.open");
  EXPECT_TRUE(r->rate);
  EXPECT_EQ(r->cmp, AlertRule::Cmp::kGt);
  EXPECT_DOUBLE_EQ(r->threshold, 0.5);
  EXPECT_EQ(r->sustain, 3u);
  EXPECT_EQ(r->to_string(), "breaker-storm: cm.breaker.open/s > 0.5 for 3");
}

TEST(AlertRuleTest, DefaultsAndComparators) {
  const auto r = AlertRule::parse("deep: view.queued_ops >= 8");
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(r->rate);
  EXPECT_EQ(r->cmp, AlertRule::Cmp::kGe);
  EXPECT_EQ(r->sustain, 1u);  // `for N` defaults to 1
  EXPECT_TRUE(AlertRule::parse("a: m < 1").has_value());
  EXPECT_TRUE(AlertRule::parse("a: m <= -2.5").has_value());
}

TEST(AlertRuleTest, RejectsMalformedText) {
  std::string err;
  EXPECT_FALSE(AlertRule::parse("no-colon m > 1", &err).has_value());
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(AlertRule::parse(": m > 1", &err).has_value());
  EXPECT_FALSE(AlertRule::parse("a: m", &err).has_value());
  EXPECT_FALSE(AlertRule::parse("a: m == 1", &err).has_value());
  EXPECT_FALSE(AlertRule::parse("a: m > banana", &err).has_value());
  EXPECT_FALSE(AlertRule::parse("a: m > 1 for 0", &err).has_value());
  EXPECT_FALSE(AlertRule::parse("a: m > 1 for -2", &err).has_value());
  EXPECT_FALSE(AlertRule::parse("a: m > 1 sustained 2", &err).has_value());
  EXPECT_FALSE(AlertRule::parse("a: m > 1 for 2 extra", &err).has_value());
}

TEST(AlertRuleTest, Breaches) {
  const auto r = AlertRule::parse("a: m >= 10");
  EXPECT_TRUE(r->breaches(10));
  EXPECT_TRUE(r->breaches(11));
  EXPECT_FALSE(r->breaches(9.999));
}

// ---- lifecycle -------------------------------------------------------------

TEST(AlertEngineTest, RaisesAfterSustainAndClears) {
  AlertEngine eng;
  ASSERT_TRUE(eng.add_rule("retry-storm: cm.op.retry/s > 10 for 2"));
  const SeriesId id{"cm.op.retry", {}};

  eng.evaluate(window(0, {{id, counter(5, 50)}}));  // breach 1/2
  EXPECT_EQ(eng.raised_total(), 0u);
  EXPECT_TRUE(eng.active().empty());

  eng.evaluate(window(1, {{id, counter(10, 50)}}));  // breach 2/2 → raise
  EXPECT_EQ(eng.raised_total(), 1u);
  ASSERT_EQ(eng.active().size(), 1u);
  EXPECT_EQ(eng.active()[0].rule, "retry-storm");
  EXPECT_EQ(eng.active()[0].window, 1u);

  eng.evaluate(window(2, {{id, counter(15, 50)}}));  // still breaching
  EXPECT_EQ(eng.raised_total(), 1u);  // no re-raise
  // The active alert keeps its original raise window.
  EXPECT_EQ(eng.active()[0].window, 1u);

  eng.evaluate(window(3, {{id, counter(15, 0)}}));  // quiet → clear
  EXPECT_EQ(eng.cleared_total(), 1u);
  EXPECT_TRUE(eng.active().empty());
  EXPECT_EQ(eng.windows_evaluated(), 4u);
}

TEST(AlertEngineTest, SustainResetsOnANonBreachingWindow) {
  AlertEngine eng;
  ASSERT_TRUE(eng.add_rule("s: m/s > 0 for 3"));
  const SeriesId id{"m", {}};
  eng.evaluate(window(0, {{id, counter(1, 1)}}));
  eng.evaluate(window(1, {{id, counter(2, 1)}}));
  eng.evaluate(window(2, {{id, counter(2, 0)}}));  // streak broken
  eng.evaluate(window(3, {{id, counter(3, 1)}}));
  eng.evaluate(window(4, {{id, counter(4, 1)}}));
  EXPECT_EQ(eng.raised_total(), 0u);  // never held for 3 consecutive
  eng.evaluate(window(5, {{id, counter(5, 1)}}));
  EXPECT_EQ(eng.raised_total(), 1u);
}

TEST(AlertEngineTest, LabeledSeriesRaiseIndependently) {
  AlertEngine eng;
  ASSERT_TRUE(eng.add_rule("deep: view.queued_ops >= 8"));
  const SeriesId v0{"view.queued_ops", {{"view", "0"}}};
  const SeriesId v1{"view.queued_ops", {{"view", "1"}}};

  eng.evaluate(window(0, {{v0, gauge(2)}, {v1, gauge(9)}}));
  ASSERT_EQ(eng.active().size(), 1u);
  EXPECT_EQ(eng.active()[0].series, v1);

  eng.evaluate(window(1, {{v0, gauge(12)}, {v1, gauge(9)}}));
  EXPECT_EQ(eng.active().size(), 2u);
  EXPECT_EQ(eng.raised_total(), 2u);

  eng.evaluate(window(2, {{v0, gauge(12)}, {v1, gauge(1)}}));
  ASSERT_EQ(eng.active().size(), 1u);
  EXPECT_EQ(eng.active()[0].series, v0);
  EXPECT_EQ(eng.cleared_total(), 1u);
}

TEST(AlertEngineTest, VanishedSeriesClearsItsAlert) {
  AlertEngine eng;
  ASSERT_TRUE(eng.add_rule("deep: view.queued_ops > 5"));
  const SeriesId v7{"view.queued_ops", {{"view", "7"}}};
  eng.evaluate(window(0, {{v7, gauge(9)}}));
  EXPECT_EQ(eng.active().size(), 1u);

  // View 7 crashed: its series stops being reported entirely. The
  // alert must clear (exactly once), not stick forever.
  eng.evaluate(window(1, {}));
  EXPECT_TRUE(eng.active().empty());
  EXPECT_EQ(eng.cleared_total(), 1u);
  eng.evaluate(window(2, {}));
  EXPECT_EQ(eng.cleared_total(), 1u);
}

TEST(AlertEngineTest, EmitsTraceEventsAndCounters) {
  flecc::obs::TraceBuffer buf(64);
  AlertEngine eng;
  eng.set_trace(&buf);
  ASSERT_TRUE(eng.add_rule("storm: m/s > 0"));
  const SeriesId id{"m", {}};

  eng.evaluate(window(0, {{id, counter(1, 10)}}));
  eng.evaluate(window(1, {{id, counter(1, 0)}}));

  const auto events = buf.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, EventKind::kAlertRaised);
  EXPECT_STREQ(events[0].label, "storm");
  EXPECT_EQ(events[0].a, 0u);  // raising window index
  EXPECT_EQ(events[1].kind, EventKind::kAlertCleared);
  EXPECT_EQ(events[1].a, 1u);

  const auto counters = eng.counters();
  EXPECT_EQ(counters.get("alerts.raised"), 1u);
  EXPECT_EQ(counters.get("alerts.cleared"), 1u);
  EXPECT_EQ(counters.get("alerts.evaluations"), 2u);
}
