// JSONL/CSV sink tests: round-trip fidelity, escaping, malformed-line
// handling. These run identically under FLECC_TRACE=OFF because the
// serializers operate on plain TraceEvent values.
#include "obs/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace flecc::obs {
namespace {

std::vector<TraceEvent> sample_events() {
  std::vector<TraceEvent> out;
  out.push_back(make_event(100, EventKind::kOpStarted, Role::kCacheManager,
                           agent_key({3, 1}), span_id({3, 1}, 7), "pull"));
  out.push_back(make_event(150, EventKind::kMsgSent, Role::kCacheManager,
                           agent_key({3, 1}), span_id({3, 1}, 7),
                           "flecc.pullReq", 1));
  out.push_back(make_event(220, EventKind::kMsgDropped, Role::kFabric,
                           agent_key({3, 1}), 0, "flecc.pullReq", kDropLoss,
                           agent_key({9, 1})));
  out.push_back(make_event(400, EventKind::kOpCompleted, Role::kCacheManager,
                           agent_key({3, 1}), span_id({3, 1}, 7), "pull", 2));
  return out;
}

void expect_same(const TraceEvent& x, const TraceEvent& y) {
  EXPECT_EQ(x.at, y.at);
  EXPECT_EQ(x.kind, y.kind);
  EXPECT_EQ(x.role, y.role);
  EXPECT_EQ(x.agent, y.agent);
  EXPECT_EQ(x.span, y.span);
  EXPECT_EQ(x.a, y.a);
  EXPECT_EQ(x.b, y.b);
  EXPECT_EQ(x.clock, y.clock);
  EXPECT_STREQ(x.label, y.label);
}

TEST(TraceJsonlTest, RoundTripsEveryField) {
  for (const auto& e : sample_events()) {
    const std::string line = to_jsonl(e);
    const auto back = from_jsonl(line);
    ASSERT_TRUE(back.has_value()) << line;
    expect_same(e, *back);
  }
}

TEST(TraceJsonlTest, LineLooksLikeJson) {
  const auto events = sample_events();
  const std::string line = to_jsonl(events[0]);
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_NE(line.find("\"kind\":\"op_started\""), std::string::npos);
  EXPECT_NE(line.find("\"role\":\"cm\""), std::string::npos);
  EXPECT_NE(line.find("\"agent\":\"3:1\""), std::string::npos);
  // Spans serialize as strings: 64-bit values overflow JSON doubles.
  EXPECT_NE(line.find("\"span\":\""), std::string::npos);
}

TEST(TraceJsonlTest, ClockRoundTripsAndDefaultsToZero) {
  TraceEvent e = make_event(9, EventKind::kMsgSent, Role::kCacheManager,
                            agent_key({4, 2}), 0, "flecc.push_update");
  e.clock = 0xdeadbeefULL;
  const auto back = from_jsonl(to_jsonl(e));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->clock, 0xdeadbeefULL);

  // Pre-clock traces have no "clock" field; readers default it to 0.
  const auto old = from_jsonl(
      "{\"t\":5,\"kind\":\"msg_sent\",\"role\":\"cm\",\"agent\":\"1:1\","
      "\"span\":\"0\",\"label\":\"x\",\"a\":0,\"b\":0}");
  ASSERT_TRUE(old.has_value());
  EXPECT_EQ(old->clock, 0u);
}

TEST(TraceJsonlTest, EscapesHostileLabels) {
  const TraceEvent e = make_event(1, EventKind::kOpStarted, Role::kOther, 0,
                                  0, "a\"b\\c\td");
  const auto back = from_jsonl(to_jsonl(e));
  ASSERT_TRUE(back.has_value());
  EXPECT_STREQ(back->label, "a\"b\\c\td");
}

TEST(TraceJsonlTest, RejectsMalformedLines) {
  EXPECT_FALSE(from_jsonl("").has_value());
  EXPECT_FALSE(from_jsonl("not json").has_value());
  EXPECT_FALSE(from_jsonl("{\"t\":5}").has_value());
  EXPECT_FALSE(
      from_jsonl("{\"t\":5,\"kind\":\"no_such_kind\",\"role\":\"cm\","
                 "\"agent\":\"1:1\",\"span\":\"0\",\"label\":\"\",\"a\":0,"
                 "\"b\":0}")
          .has_value());
}

TEST(TraceJsonlTest, StreamReaderSkipsBadLinesAndCounts) {
  const auto events = sample_events();
  std::ostringstream os;
  os << to_jsonl(events[0]) << "\n";
  os << "\n";             // blank: skipped silently
  os << "garbage\n";      // malformed: counted
  os << to_jsonl(events[1]) << "\n";
  std::istringstream is(os.str());
  std::size_t bad = 0;
  const auto back = read_jsonl(is, &bad);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(bad, 1u);
  expect_same(events[0], back[0]);
  expect_same(events[1], back[1]);
}

TEST(TraceJsonlTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "trace_io_test.jsonl";
  const auto events = sample_events();
  ASSERT_TRUE(write_jsonl(events, path));
  std::size_t bad = 0;
  const auto back = read_jsonl_file(path, &bad);
  EXPECT_EQ(bad, 0u);
  ASSERT_EQ(back.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    expect_same(events[i], back[i]);
  }
  std::remove(path.c_str());
}

TEST(TraceParseTest, KindAndRoleNamesRoundTrip) {
  for (int k = 0; k <= static_cast<int>(kMaxEventKind); ++k) {
    const auto kind = static_cast<EventKind>(k);
    const auto parsed = parse_kind(to_string(kind));
    ASSERT_TRUE(parsed.has_value()) << to_string(kind);
    EXPECT_EQ(*parsed, kind);
  }
  for (int r = 0; r <= static_cast<int>(Role::kOther); ++r) {
    const auto role = static_cast<Role>(r);
    const auto parsed = parse_role(to_string(role));
    ASSERT_TRUE(parsed.has_value()) << to_string(role);
    EXPECT_EQ(*parsed, role);
  }
  EXPECT_FALSE(parse_kind("bogus").has_value());
  EXPECT_FALSE(parse_role("bogus").has_value());
}

TEST(TraceCsvTest, HeaderAndOneRowPerEvent) {
  const auto events = sample_events();
  const std::string csv = to_csv(events);
  std::istringstream is(csv);
  std::string line;
  ASSERT_TRUE(std::getline(is, line));
  EXPECT_EQ(line, "t,kind,role,agent,span,label,a,b,clock");
  std::size_t rows = 0;
  while (std::getline(is, line)) {
    if (!line.empty()) ++rows;
  }
  EXPECT_EQ(rows, events.size());
  EXPECT_NE(csv.find("msg_dropped"), std::string::npos);
}

}  // namespace
}  // namespace flecc::obs
