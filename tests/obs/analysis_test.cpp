// Trace analysis tests: summarize() tallies and latency pairing,
// metrics export, span listing, and the sequence renderer. Events are
// built by hand so these run identically under FLECC_TRACE=OFF.
#include "obs/analysis.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace flecc::obs {
namespace {

/// A small two-op trace: one clean pull (span A: 100us..400us), one
/// pull that needed a retransmission (span B: 500us..1500us), plus a
/// drop, a dedup hit and a validity trigger firing.
std::vector<TraceEvent> small_trace() {
  const net::Address cm3{3, 1};
  const net::Address cm4{4, 1};
  const net::Address dm{9, 1};
  const std::uint64_t a = span_id(cm3, 1);
  const std::uint64_t b = span_id(cm4, 1);
  std::vector<TraceEvent> out;
  out.push_back(make_event(100, EventKind::kOpStarted, Role::kCacheManager,
                           agent_key(cm3), a, "pull"));
  out.push_back(make_event(110, EventKind::kMsgSent, Role::kCacheManager,
                           agent_key(cm3), a, "flecc.pullReq", 1));
  out.push_back(make_event(300, EventKind::kMsgReceived, Role::kDirectory,
                           agent_key(dm), a, "flecc.pullReq"));
  out.push_back(make_event(400, EventKind::kOpCompleted, Role::kCacheManager,
                           agent_key(cm3), a, "pull", 1));

  out.push_back(make_event(500, EventKind::kOpStarted, Role::kCacheManager,
                           agent_key(cm4), b, "pull"));
  out.push_back(make_event(510, EventKind::kMsgSent, Role::kCacheManager,
                           agent_key(cm4), b, "flecc.pullReq", 1));
  out.push_back(make_event(520, EventKind::kMsgDropped, Role::kFabric,
                           agent_key(cm4), 0, "flecc.pullReq", kDropLoss,
                           agent_key(dm)));
  out.push_back(make_event(900, EventKind::kMsgRetransmitted,
                           Role::kCacheManager, agent_key(cm4), b,
                           "flecc.pullReq", 2));
  out.push_back(make_event(1000, EventKind::kMsgReceived, Role::kDirectory,
                           agent_key(dm), b, "flecc.pullReq"));
  out.push_back(make_event(1100, EventKind::kDedupHit, Role::kDirectory,
                           agent_key(dm), b, "flecc.pullReq"));
  out.push_back(make_event(1200, EventKind::kTriggerFired, Role::kDirectory,
                           agent_key(dm), b, "validity", 2));
  out.push_back(make_event(1500, EventKind::kOpCompleted, Role::kCacheManager,
                           agent_key(cm4), b, "pull", 2));
  return out;
}

TEST(SummarizeTest, TalliesEachEventKind) {
  const auto s = summarize(small_trace());
  EXPECT_EQ(s.total_events, 12u);
  EXPECT_EQ(s.ops_started, 2u);
  EXPECT_EQ(s.ops_completed, 2u);
  EXPECT_EQ(s.ops_unfinished, 0u);
  EXPECT_EQ(s.msgs_sent, 2u);
  EXPECT_EQ(s.msgs_received, 2u);
  EXPECT_EQ(s.retransmits, 1u);
  EXPECT_EQ(s.dedup_hits, 1u);
  EXPECT_EQ(s.drops, 1u);
  EXPECT_EQ(s.drops_by_reason.at("loss"), 1u);
  EXPECT_EQ(s.trigger_fires.at("validity"), 1u);
  EXPECT_EQ(s.first_at, 100);
  EXPECT_EQ(s.last_at, 1500);
}

TEST(SummarizeTest, PairsLatenciesBySpan) {
  const auto s = summarize(small_trace());
  ASSERT_EQ(s.op_latency_us.count("pull"), 1u);
  const auto& lat = s.op_latency_us.at("pull");
  ASSERT_EQ(lat.count(), 2u);
  // Span A: 400-100 = 300us; span B: 1500-500 = 1000us.
  EXPECT_DOUBLE_EQ(lat.quantile(0.0), 300.0);
  EXPECT_DOUBLE_EQ(lat.quantile(1.0), 1000.0);
}

TEST(SummarizeTest, UnfinishedOpsAreCounted) {
  auto events = small_trace();
  events.pop_back();  // drop span B's op_completed
  const auto s = summarize(events);
  EXPECT_EQ(s.ops_completed, 1u);
  EXPECT_EQ(s.ops_unfinished, 1u);
  EXPECT_EQ(s.op_latency_us.at("pull").count(), 1u);
}

TEST(SummarizeTest, EmptyTraceIsAllZeroes) {
  const auto s = summarize({});
  EXPECT_EQ(s.total_events, 0u);
  EXPECT_EQ(s.ops_started, 0u);
  EXPECT_TRUE(s.op_latency_us.empty());
}

TEST(DropReasonTest, KnownAndUnknownCodes) {
  EXPECT_STREQ(drop_reason_name(kDropLoss), "loss");
  EXPECT_STREQ(drop_reason_name(kDropPartition), "partition");
  EXPECT_STREQ(drop_reason_name(kDropNoRoute), "no_route");
  EXPECT_STREQ(drop_reason_name(kDropUnbound), "unbound");
  EXPECT_STREQ(drop_reason_name(999), "other");
}

TEST(ExportMetricsTest, CountersAndLatencySamplesAppear)  {
  const auto s = summarize(small_trace());
  MetricsRegistry reg;
  export_metrics(s, reg);
  EXPECT_EQ(reg.counter("trace.msgs.retransmitted"), 1u);
  EXPECT_EQ(reg.counter("trace.dedup.hits"), 1u);
  EXPECT_EQ(reg.counter("trace.msgs.dropped.loss"), 1u);
  ASSERT_EQ(reg.sample_sets().count("op.pull.latency_us"), 1u);
  EXPECT_EQ(reg.sample_sets().at("op.pull.latency_us").count(), 2u);
}

TEST(RenderReportTest, MentionsTheHeadlineNumbers) {
  const auto s = summarize(small_trace());
  const std::string report = render_report(s);
  EXPECT_NE(report.find("pull"), std::string::npos);
  EXPECT_NE(report.find("retransmit"), std::string::npos);
  EXPECT_NE(report.find("dedup"), std::string::npos);
}

TEST(ListSpansTest, MostEventsFirstAndLabeled) {
  const auto spans = list_spans(small_trace());
  ASSERT_EQ(spans.size(), 2u);
  // Span B carries more events than span A.
  EXPECT_EQ(spans[0].span, span_id({4, 1}, 1));
  EXPECT_GE(spans[0].events, spans[1].events);
  EXPECT_EQ(spans[0].label, "pull");
}

TEST(RenderSequenceTest, OneLinePerSpanEvent) {
  const auto events = small_trace();
  const std::uint64_t b = span_id({4, 1}, 1);
  const std::string seq = render_sequence(events, b);
  EXPECT_NE(seq.find("op_started"), std::string::npos);
  EXPECT_NE(seq.find("msg_retransmitted"), std::string::npos);
  EXPECT_NE(seq.find("op_completed"), std::string::npos);
  // Span A's events stay out of span B's view.
  std::size_t lines = 0;
  for (const char c : seq) {
    if (c == '\n') ++lines;
  }
  EXPECT_GE(lines, 7u);  // 7 events carry span B
  EXPECT_EQ(render_sequence(events, 424242).find("op_"), std::string::npos);
}

}  // namespace
}  // namespace flecc::obs
