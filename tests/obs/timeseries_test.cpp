// TimeSeriesRegistry: windowed sampling of collector callbacks —
// deltas and rates for counters, reset clamping, labeled series,
// windowed quantiles from log2-bucket deltas, the bounded ring, and
// collector deregistration (shared hubs outliving testbeds).
#include "obs/timeseries.hpp"

#include <gtest/gtest.h>

#include "sim/stats.hpp"
#include "sim/time.hpp"

using flecc::obs::SampleFrame;
using flecc::obs::SeriesId;
using flecc::obs::SeriesKind;
using flecc::obs::TimeSeriesRegistry;
using flecc::obs::TsLabels;
using flecc::sim::msec;

namespace {

TimeSeriesRegistry::Config small_ring(std::size_t capacity = 64) {
  TimeSeriesRegistry::Config cfg;
  cfg.interval = msec(100);
  cfg.capacity = capacity;
  return cfg;
}

}  // namespace

TEST(TimeSeriesTest, CounterDeltasAndRates) {
  TimeSeriesRegistry reg(small_ring());
  double cum = 0;
  reg.add_collector([&cum](SampleFrame& f) { f.counter("ops", cum); });

  cum = 10;
  reg.sample(msec(100));
  auto w = reg.latest();
  ASSERT_TRUE(w.has_value());
  const SeriesId id{"ops", {}};
  ASSERT_EQ(w->series.count(id), 1u);
  // First window: delta from an implicit 0 baseline over 100ms.
  EXPECT_DOUBLE_EQ(w->series[id].value, 10.0);
  EXPECT_DOUBLE_EQ(w->series[id].delta, 10.0);
  EXPECT_DOUBLE_EQ(w->series[id].rate, 100.0);

  cum = 25;
  reg.sample(msec(200));
  w = reg.latest();
  EXPECT_DOUBLE_EQ(w->series[id].value, 25.0);
  EXPECT_DOUBLE_EQ(w->series[id].delta, 15.0);
  EXPECT_DOUBLE_EQ(w->series[id].rate, 150.0);
  EXPECT_EQ(w->index, 1u);
  EXPECT_EQ(w->start, msec(100));
  EXPECT_EQ(w->end, msec(200));
}

TEST(TimeSeriesTest, CounterResetClampsToNewValue) {
  TimeSeriesRegistry reg(small_ring());
  double cum = 100;
  reg.add_collector([&cum](SampleFrame& f) { f.counter("ops", cum); });
  reg.sample(msec(100));

  // A restarted agent reports a shrunken cumulative value: the delta is
  // the new value, never negative.
  cum = 4;
  reg.sample(msec(200));
  const auto w = reg.latest();
  const SeriesId id{"ops", {}};
  EXPECT_DOUBLE_EQ(w->series.at(id).delta, 4.0);
  EXPECT_GE(w->series.at(id).rate, 0.0);
}

TEST(TimeSeriesTest, LabeledSeriesAreIndependent) {
  TimeSeriesRegistry reg(small_ring());
  reg.add_collector([](SampleFrame& f) {
    f.counter("view.ops", 10, {{"view", "0"}});
    f.counter("view.ops", 30, {{"view", "1"}});
    f.gauge("view.queue", 5, {{"view", "1"}});
  });
  reg.sample(msec(100));
  const auto w = reg.latest();
  EXPECT_EQ(w->series.size(), 3u);
  const SeriesId v0{"view.ops", {{"view", "0"}}};
  const SeriesId v1{"view.ops", {{"view", "1"}}};
  EXPECT_DOUBLE_EQ(w->series.at(v0).value, 10.0);
  EXPECT_DOUBLE_EQ(w->series.at(v1).value, 30.0);
  const SeriesId q1{"view.queue", {{"view", "1"}}};
  EXPECT_EQ(w->series.at(q1).kind, SeriesKind::kGauge);
  EXPECT_DOUBLE_EQ(w->series.at(q1).delta, 0.0);  // gauges carry no delta
}

TEST(TimeSeriesTest, DuplicateReportsAccumulate) {
  // Two collectors (or one collector folding two components) reporting
  // the same id sum into one series.
  TimeSeriesRegistry reg(small_ring());
  reg.add_collector([](SampleFrame& f) { f.counter("ops", 3); });
  reg.add_collector([](SampleFrame& f) { f.counter("ops", 4); });
  reg.sample(msec(100));
  EXPECT_DOUBLE_EQ(reg.latest()->series.at(SeriesId{"ops", {}}).value, 7.0);
}

TEST(TimeSeriesTest, CounterSetFoldingSplitsDottedFamilies) {
  TimeSeriesRegistry reg(small_ring());
  flecc::sim::CounterSet set;
  set.inc("msg.sent", 5);
  set.inc("msg.dropped.loss", 2);
  set.inc("msg.dropped.partition", 1);
  reg.add_collector(
      [&set](SampleFrame& f) { f.counters(set, "net.", {{"node", "a"}}); });
  reg.sample(msec(100));
  const auto w = reg.latest();
  // Dimension segments became labels alongside the caller's labels.
  const SeriesId loss{"net.msg.dropped",
                      {{"node", "a"}, {"reason", "loss"}}};
  const SeriesId part{"net.msg.dropped",
                      {{"node", "a"}, {"reason", "partition"}}};
  EXPECT_DOUBLE_EQ(w->series.at(loss).value, 2.0);
  EXPECT_DOUBLE_EQ(w->series.at(part).value, 1.0);
  EXPECT_DOUBLE_EQ(
      w->series.at(SeriesId{"net.msg.sent", {{"node", "a"}}}).value, 5.0);
}

TEST(TimeSeriesTest, WindowedQuantilesUseOnlyTheWindowsDeltas) {
  TimeSeriesRegistry reg(small_ring());
  flecc::sim::RunningStat lat;
  reg.add_collector([&lat](SampleFrame& f) { f.stat("lat_us", lat); });

  for (int i = 0; i < 100; ++i) lat.add(10.0);  // first window: all fast
  reg.sample(msec(100));
  const SeriesId id{"lat_us", {}};
  auto w = reg.latest();
  ASSERT_EQ(w->stats.count(id), 1u);
  EXPECT_EQ(w->stats[id].count, 100u);
  EXPECT_LE(w->stats[id].p99, 16.0);  // log2 bucket [8,16)

  for (int i = 0; i < 100; ++i) lat.add(1000.0);  // second window: all slow
  reg.sample(msec(200));
  w = reg.latest();
  // The cumulative stat is half fast/half slow, but THIS window only
  // saw slow observations — p50 must reflect the window, not the life.
  EXPECT_EQ(w->stats[id].count, 100u);
  EXPECT_GE(w->stats[id].p50, 512.0);
  EXPECT_GE(w->stats[id].mean, 999.0);
}

TEST(TimeSeriesTest, RingIsBounded) {
  TimeSeriesRegistry reg(small_ring(/*capacity=*/4));
  reg.add_collector([](SampleFrame& f) { f.counter("ops", 1); });
  for (int i = 1; i <= 10; ++i) reg.sample(msec(100 * i));
  EXPECT_EQ(reg.windows_closed(), 10u);
  const auto recent = reg.recent(100);
  ASSERT_EQ(recent.size(), 4u);  // older windows fell off
  EXPECT_EQ(recent.front().index, 6u);
  EXPECT_EQ(recent.back().index, 9u);
  EXPECT_EQ(reg.recent(2).size(), 2u);
  EXPECT_EQ(reg.recent(2).back().index, 9u);
}

TEST(TimeSeriesTest, RemoveCollectorStopsSampling) {
  TimeSeriesRegistry reg(small_ring());
  const std::size_t token =
      reg.add_collector([](SampleFrame& f) { f.counter("dead", 1); });
  reg.add_collector([](SampleFrame& f) { f.counter("alive", 1); });
  reg.sample(msec(100));
  EXPECT_EQ(reg.latest()->series.size(), 2u);

  reg.remove_collector(token);
  EXPECT_EQ(reg.collector_count(), 1u);
  reg.sample(msec(200));
  const auto w = reg.latest();
  EXPECT_EQ(w->series.count(SeriesId{"dead", {}}), 0u);
  EXPECT_EQ(w->series.count(SeriesId{"alive", {}}), 1u);
}

TEST(TimeSeriesTest, ClockRestartStartsAFreshWindow) {
  // A long-lived hub handed from one run to the next sees simulated
  // time jump backwards; the sampler must not produce a window
  // spanning the two timelines (or a zero-span rate).
  TimeSeriesRegistry reg(small_ring());
  double cum = 50;
  reg.add_collector([&cum](SampleFrame& f) { f.counter("ops", cum); });
  reg.sample(msec(40000));  // end of run 1

  cum = 7;                // run 2's fresh counter, small again
  reg.sample(msec(100));  // first sample of run 2
  const auto w = reg.latest();
  EXPECT_EQ(w->start, 0u);
  EXPECT_EQ(w->end, flecc::sim::Time{msec(100)});
  // Reset clamping + restarted clock: a real window span and a real rate.
  EXPECT_DOUBLE_EQ(w->series.at(SeriesId{"ops", {}}).delta, 7.0);
  EXPECT_DOUBLE_EQ(w->series.at(SeriesId{"ops", {}}).rate, 70.0);
}
