// The whole telemetry pipeline against a real Flecc deployment: a
// FleccTestbed wired to a TelemetryHub, windows closing on simulated
// time, /metrics rendering validator-clean mid-run through a real
// socket, /healthz tracking an injected directory crash, an alert
// raising and clearing over the workload's life — and the determinism
// contract: a run with the hub attached is bit-identical to one
// without.
#include <gtest/gtest.h>

#include <string>

#include "airline/testbed.hpp"
#include "net/telemetry_server.hpp"
#include "obs/prom.hpp"
#include "obs/telemetry.hpp"
#include "sim/time.hpp"

namespace flecc {
namespace {

using airline::FleccTestbed;
using airline::TestbedOptions;
using obs::TelemetryHub;
using obs::TelemetryOptions;
using sim::msec;

TestbedOptions small_opts() {
  TestbedOptions opts;
  opts.n_agents = 6;
  opts.group_size = 3;
  opts.flights_per_group = 2;
  opts.validity_trigger = "(_age < 500)";
  return opts;
}

TelemetryOptions fast_hub() {
  TelemetryOptions t;
  t.interval = msec(10);  // benches use 250ms; tests want many windows
  return t;
}

void start_workload(FleccTestbed& tb, std::size_t ops = 3) {
  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    const auto flight = tb.assignment().agent_flights[i][0];
    tb.agent(i).run_reservation_loop(ops, flight, 1, /*pull_first=*/true);
  }
}

/// Everything observable about a finished run that telemetry must not
/// have changed.
std::string run_signature(FleccTestbed& tb) {
  return tb.fabric().counters().to_string() + "|now=" +
         std::to_string(tb.simulator().now());
}

}  // namespace

TEST(TelemetryE2eTest, WindowsCloseOverARealRun) {
  TelemetryHub hub(fast_hub());
  TestbedOptions opts = small_opts();
  opts.telemetry = &hub;
  FleccTestbed tb(opts);
  tb.init_all_agents();
  start_workload(tb);
  tb.run_until(msec(500));

  EXPECT_GE(hub.registry().windows_closed(), 40u);  // ~500ms / 10ms
  const auto w = hub.registry().latest();
  ASSERT_TRUE(w.has_value());
  // The testbed's collectors cover fabric, directory, CM rollup, and
  // the dimensional per-view series.
  EXPECT_EQ(w->series.count(obs::SeriesId{"net.msg.sent", {}}), 1u);
  EXPECT_EQ(w->series.count(obs::SeriesId{"dm.views.registered", {}}), 1u);
  EXPECT_EQ(
      w->series.count(obs::SeriesId{"view.queued_ops", {{"view", "0"}}}), 1u);
  // Work actually flowed through the windows.
  bool saw_traffic = false;
  for (const auto& win : hub.registry().recent(100)) {
    const auto it = win.series.find(obs::SeriesId{"net.msg.sent", {}});
    if (it != win.series.end() && it->second.delta > 0) saw_traffic = true;
  }
  EXPECT_TRUE(saw_traffic);
}

TEST(TelemetryE2eTest, MetricsScrapeThroughARealSocketMidRun) {
  TelemetryHub hub(fast_hub());
  TestbedOptions opts = small_opts();
  opts.telemetry = &hub;
  FleccTestbed tb(opts);
  tb.init_all_agents();
  start_workload(tb);
  tb.run_until(msec(100));  // mid-run: windows exist, workload unfinished

  net::TelemetryServer server(0);
  ASSERT_TRUE(server.listening());
  net::serve_telemetry(hub, server);
  server.serve_background();

  const auto metrics = net::http_get("127.0.0.1", server.port(), "/metrics");
  ASSERT_TRUE(metrics.has_value());
  EXPECT_NE(metrics->find("flecc_net_msg_sent_total"), std::string::npos);
  EXPECT_NE(metrics->find("flecc_view_queued_ops"), std::string::npos);
  const auto issues = obs::prom::validate(*metrics);
  for (const auto& i : issues) ADD_FAILURE() << i.to_string();

  const auto healthz = net::http_get("127.0.0.1", server.port(), "/healthz");
  ASSERT_TRUE(healthz.has_value());
  EXPECT_NE(healthz->find("\"status\":\"ok\""), std::string::npos);

  tb.run_until(msec(600));  // serving must not wedge the simulation
  EXPECT_GE(hub.registry().windows_closed(), 50u);
}

TEST(TelemetryE2eTest, HealthzReflectsADirectoryCrashAndRecovery) {
  TelemetryHub hub(fast_hub());
  TestbedOptions opts = small_opts();
  opts.telemetry = &hub;
  opts.durable_directory = true;
  FleccTestbed tb(opts);
  tb.init_all_agents();
  start_workload(tb, 1);
  tb.run_until(msec(200));
  EXPECT_EQ(hub.health_status(), "ok");

  tb.crash_directory();
  tb.run_until(msec(300));  // a window closes with health.dm.down = 1
  EXPECT_EQ(hub.health_status(), "degraded");
  // /healthz keys strip the family prefix: "dm.down":1 under "health".
  EXPECT_NE(hub.render_healthz().find("\"dm.down\":1"), std::string::npos);

  tb.restart_directory();
  tb.run_until(msec(1500));  // rebuild completes, gauges return to zero
  EXPECT_EQ(hub.health_status(), "ok");
}

TEST(TelemetryE2eTest, AlertRaisesUnderLoadAndClearsWhenQuiet) {
  TelemetryHub hub(fast_hub());
  std::string err;
  ASSERT_TRUE(hub.alerts().add_rule("traffic: net.msg.sent/s > 0", &err))
      << err;
  TestbedOptions opts = small_opts();
  opts.telemetry = &hub;
  FleccTestbed tb(opts);
  tb.init_all_agents();
  start_workload(tb);
  tb.run_until(msec(300));   // load → the rule breaches and raises
  tb.run_until(msec(2000));  // long idle tail → zero-delta windows clear it

  EXPECT_GE(hub.alerts().raised_total(), 1u);
  EXPECT_EQ(hub.alerts().cleared_total(), hub.alerts().raised_total());
  EXPECT_TRUE(hub.alerts().active().empty());
  EXPECT_EQ(hub.health_status(), "ok");
}

TEST(TelemetryE2eTest, TelemetryNeverPerturbsTheRun) {
  const sim::Time horizon = msec(800);

  std::string with_hub;
  {
    TelemetryHub hub(fast_hub());
    std::string err;
    ASSERT_TRUE(hub.alerts().add_rule("t: net.msg.sent/s > 0", &err));
    TestbedOptions opts = small_opts();
    opts.telemetry = &hub;
    FleccTestbed tb(opts);
    tb.init_all_agents();
    start_workload(tb);
    tb.run_until(horizon);
    with_hub = run_signature(tb);
    EXPECT_GT(hub.registry().windows_closed(), 0u);  // hub really ran
  }

  std::string without_hub;
  {
    FleccTestbed tb(small_opts());
    tb.init_all_agents();
    start_workload(tb);
    tb.run_until(horizon);
    without_hub = run_signature(tb);
  }

  EXPECT_EQ(with_hub, without_hub);
}

}  // namespace flecc
