// Causal-clock propagation and span stitching over the REAL protocol:
// Lamport stamps must never regress within an agent's event stream —
// across loss, partitions, mid-op mode switches, and
// eviction/reconnect — and every completed operation must stitch back
// to its op_started through one span id. The same properties are
// re-checked by the online InvariantMonitor (zero causality
// violations, non-trivial check counts). A ThreadFabric variant covers
// the concurrent-runtime clock plumbing.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "airline/testbed.hpp"
#include "airline/travel_agent_view.hpp"
#include "core/cache_manager.hpp"
#include "core/directory_manager.hpp"
#include "obs/monitor/invariant_monitor.hpp"
#include "rt/thread_fabric.hpp"

namespace flecc::obs {
namespace {

/// Per-agent Lamport monotonicity over a merged snapshot (events from
/// one agent appear in emission order after the stable time sort).
void expect_clocks_monotone(const std::vector<TraceEvent>& events) {
  std::map<std::uint64_t, std::uint64_t> last;
  for (const auto& e : events) {
    if (e.clock == 0) continue;  // fabric drops carry no clock
    auto [it, inserted] = last.try_emplace(e.agent, e.clock);
    if (!inserted) {
      EXPECT_GE(e.clock, it->second)
          << "clock regressed at agent " << e.agent << " ("
          << to_string(e.kind) << " '" << e.label << "' t=" << e.at << ")";
      it->second = std::max(it->second, e.clock);
    }
  }
}

/// Every completed span has a matching op_started (span stitching).
void expect_spans_stitched(const std::vector<TraceEvent>& events) {
  std::set<std::uint64_t> started;
  for (const auto& e : events) {
    if (e.kind == EventKind::kOpStarted && e.span != 0) {
      started.insert(e.span);
    }
  }
  for (const auto& e : events) {
    if (e.kind != EventKind::kOpCompleted || e.span == 0) continue;
    EXPECT_TRUE(started.count(e.span) != 0)
        << "op_completed span " << e.span << " ('" << e.label
        << "') has no op_started";
  }
}

TEST(TraceCausalityTest, ChaosRunKeepsClocksMonotoneAndSpansStitched) {
  if (!kTraceEnabled) GTEST_SKIP() << "built with FLECC_TRACE=OFF";
  // Mini chaos soak: loss, a partition long enough for eviction (the
  // cut agents reconnect and re-register afterwards), heartbeats on.
  TraceRecorder rec;
  monitor::InvariantMonitor checker;
  rec.attach_sink(&checker);

  airline::TestbedOptions opts;
  opts.trace = &rec;
  opts.n_agents = 10;
  opts.group_size = 5;
  opts.capacity = 1 << 20;
  opts.mode = core::Mode::kWeak;
  opts.validity_trigger = "(_age < 500)";
  opts.think_time = sim::msec(200);
  opts.fabric_cfg.loss_probability = 0.10;
  opts.fabric_cfg.seed = 0x5eed;
  opts.heartbeat_interval = sim::msec(500);
  opts.heartbeat_miss_limit = 3;
  opts.dir_cfg.liveness_timeout = sim::seconds(2);
  airline::FleccTestbed tb(opts);
  tb.init_all_agents();

  std::size_t loops = 0;
  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    const auto flight = tb.assignment().agent_flights[i][0];
    tb.agent(i).run_reservation_loop(6, flight, 1, /*pull_first=*/true,
                                     [&] { ++loops; });
  }
  tb.run_until(tb.simulator().now() + sim::msec(800));
  tb.partition_agents({2, 3});
  tb.run_until(tb.simulator().now() + sim::seconds(4));  // long: eviction
  tb.heal_partition();
  tb.run_until(tb.simulator().now() + sim::seconds(30));
  tb.run();
  EXPECT_EQ(loops, tb.agent_count());

  const auto events = rec.snapshot();
  ASSERT_FALSE(events.empty());
  expect_clocks_monotone(events);
  expect_spans_stitched(events);

  // The partition must actually have evicted someone, or the
  // reconnect path was never exercised.
  const auto evictions =
      std::count_if(events.begin(), events.end(), [](const TraceEvent& e) {
        return e.kind == EventKind::kViewEvicted;
      });
  EXPECT_GE(evictions, 1);

  checker.finalize();
  EXPECT_EQ(checker.violation_count(monitor::Invariant::kCausality), 0u)
      << checker.health_report();
  EXPECT_GT(checker.check_count(monitor::Invariant::kCausality), 100u);
  EXPECT_TRUE(checker.violations().empty()) << checker.health_report();
}

TEST(TraceCausalityTest, MidOpModeSwitchKeepsSpanAndClocks) {
  if (!kTraceEnabled) GTEST_SKIP() << "built with FLECC_TRACE=OFF";
  TraceRecorder rec;
  airline::TestbedOptions opts;
  opts.trace = &rec;
  opts.n_agents = 2;
  opts.group_size = 2;
  opts.capacity = 1 << 20;
  opts.mode = core::Mode::kWeak;
  airline::FleccTestbed tb(opts);
  tb.init_all_agents();

  // Queue work, then switch modes while the queue is non-empty: the
  // mode_change op rides the same FIFO and must trace like any other.
  const auto flight = tb.assignment().agent_flights[0][0];
  bool switched = false;
  bool looped = false;
  tb.agent(0).run_reservation_loop(3, flight, 1, /*pull_first=*/true,
                                   [&] { looped = true; });
  tb.agent(0).switch_mode(core::Mode::kStrong, [&] { switched = true; });
  tb.run();
  ASSERT_TRUE(switched);
  ASSERT_TRUE(looped);

  const auto events = rec.snapshot();
  expect_clocks_monotone(events);
  expect_spans_stitched(events);

  // The mode_change op is span-framed and the switch event carries the
  // same span: stitching survives the mid-op switch.
  std::uint64_t mode_span = 0;
  for (const auto& e : events) {
    if (e.kind == EventKind::kOpStarted &&
        std::string(e.label) == "mode_change") {
      mode_span = e.span;
    }
  }
  ASSERT_NE(mode_span, 0u);
  bool saw_switch = false;
  bool saw_completed = false;
  for (const auto& e : events) {
    if (e.span != mode_span) continue;
    if (e.kind == EventKind::kModeSwitch) saw_switch = true;
    if (e.kind == EventKind::kOpCompleted) saw_completed = true;
  }
  EXPECT_TRUE(saw_switch);
  EXPECT_TRUE(saw_completed);

  monitor::InvariantMonitor offline;
  std::vector<TraceEvent> sorted = events;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const TraceEvent& x, const TraceEvent& y) {
                     return x.at < y.at;
                   });
  offline.run(sorted);
  EXPECT_TRUE(offline.violations().empty()) << offline.health_report();
}

TEST(TraceCausalityTest, ThreadFabricStampsAndNeverRegresses) {
  if (!kTraceEnabled) GTEST_SKIP() << "built with FLECC_TRACE=OFF";
  // Concurrent runtime: two agent threads and the directory emit into
  // per-writer buffers; the monitor consumes inline from all three.
  rt::ThreadFabric fabric;
  TraceRecorder rec;
  monitor::InvariantMonitor checker;
  rec.attach_sink(&checker);

  auto db = airline::FlightDatabase::uniform(100, 1, 1 << 20);
  airline::FlightDatabaseAdapter adapter(db);
  const net::Address dir_addr{99, 1};
  core::DirectoryManager::Config dcfg;
  dcfg.trace = rec.make_buffer("dm");
  core::DirectoryManager directory(fabric, dir_addr, adapter, dcfg);

  auto agent_main = [&](net::Address self, TraceBuffer* buf) {
    airline::TravelAgentView ars({100});
    core::CacheManager::Config cfg;
    cfg.view_name = "causality.Agent";
    cfg.properties = ars.properties();
    cfg.mode = core::Mode::kWeak;
    cfg.trace = buf;
    core::CacheManager cm(fabric, self, dir_addr, ars, cfg);
    auto call = [&](auto method) {
      rt::wait_for([&](auto done) {
        fabric.post(self, [&, done = std::move(done)] { method(done); });
      });
    };
    call([&](auto done) { cm.init_image(done); });
    for (int i = 0; i < 5; ++i) {
      call([&](auto done) { cm.pull_image(done); });
      call([&](auto done) { cm.start_use_image(done); });
      call([&](auto done) {
        ars.confirm_tickets(100, 1);
        cm.end_use_image(true);
        done();
      });
    }
    call([&](auto done) { cm.kill_image(done); });
  };

  TraceBuffer* b1 = rec.make_buffer("cm.1");
  TraceBuffer* b2 = rec.make_buffer("cm.2");
  std::thread t1(agent_main, net::Address{1, 1}, b1);
  std::thread t2(agent_main, net::Address{2, 1}, b2);
  t1.join();
  t2.join();
  fabric.drain();

  const auto events = rec.snapshot();
  ASSERT_FALSE(events.empty());
  expect_clocks_monotone(events);
  expect_spans_stitched(events);
  checker.finalize();
  EXPECT_EQ(checker.violation_count(monitor::Invariant::kCausality), 0u)
      << checker.health_report();
  EXPECT_GT(checker.check_count(monitor::Invariant::kCausality), 50u);
}

}  // namespace
}  // namespace flecc::obs
