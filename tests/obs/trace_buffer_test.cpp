// TraceBuffer / TraceRecorder unit tests: ring wraparound, drop
// accounting, multi-agent interleaving, span ids, and the event
// constructors. Recording-dependent assertions are skipped under
// FLECC_TRACE=OFF (the shells legitimately record nothing).
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace flecc::obs {
namespace {

TraceEvent ev(sim::Time at, EventKind kind, std::uint64_t agent,
              std::uint64_t span = 0, const char* label = "x") {
  return make_event(at, kind, Role::kOther, agent, span, label);
}

TEST(TraceEventTest, MakeEventFillsEveryField) {
  const TraceEvent e =
      make_event(1500, EventKind::kMsgSent, Role::kCacheManager, 42, 7,
                 "flecc.pullReq", 3, 9);
  EXPECT_EQ(e.at, 1500);
  EXPECT_EQ(e.kind, EventKind::kMsgSent);
  EXPECT_EQ(e.role, Role::kCacheManager);
  EXPECT_EQ(e.agent, 42u);
  EXPECT_EQ(e.span, 7u);
  EXPECT_EQ(e.a, 3u);
  EXPECT_EQ(e.b, 9u);
  EXPECT_STREQ(e.label, "flecc.pullReq");
}

TEST(TraceEventTest, LongLabelsTruncateWithNul) {
  const std::string longer(100, 'q');
  const TraceEvent e = make_event(0, EventKind::kOpStarted, Role::kOther, 0,
                                  0, longer.c_str());
  EXPECT_EQ(std::string(e.label), std::string(TraceEvent::kLabelCap - 1, 'q'));
}

TEST(TraceEventTest, NullLabelIsEmpty) {
  const TraceEvent e =
      make_event(0, EventKind::kOpStarted, Role::kOther, 0, 0, nullptr);
  EXPECT_STREQ(e.label, "");
}

TEST(SpanIdTest, ZeroRequestMeansNoSpan) {
  EXPECT_EQ(span_id({3, 1}, 0), 0u);
}

TEST(SpanIdTest, DistinctAgentsAndRequestsGetDistinctSpans) {
  const net::Address a{3, 1};
  const net::Address b{4, 1};
  EXPECT_NE(span_id(a, 1), span_id(a, 2));
  EXPECT_NE(span_id(a, 1), span_id(b, 1));
  EXPECT_EQ(span_id(a, 17), span_id(a, 17));  // both ends can compute it
}

TEST(AgentKeyTest, RoundTripsAddresses) {
  const net::Address a{123, 45};
  const net::Address back = agent_addr(agent_key(a));
  EXPECT_EQ(back.node, a.node);
  EXPECT_EQ(back.port, a.port);
}

TEST(TraceBufferTest, CapacityRoundsUpToPowerOfTwo) {
  if (!kTraceEnabled) GTEST_SKIP() << "built with FLECC_TRACE=OFF";
  EXPECT_EQ(TraceBuffer(1).capacity(), 8u);
  EXPECT_EQ(TraceBuffer(8).capacity(), 8u);
  EXPECT_EQ(TraceBuffer(9).capacity(), 16u);
  EXPECT_EQ(TraceBuffer(4096).capacity(), 4096u);
}

TEST(TraceBufferTest, RecordsInOrderBelowCapacity) {
  if (!kTraceEnabled) GTEST_SKIP() << "built with FLECC_TRACE=OFF";
  TraceBuffer buf(16);
  for (int i = 0; i < 10; ++i) {
    buf.emit(ev(i, EventKind::kMsgSent, 1));
  }
  EXPECT_EQ(buf.emitted(), 10u);
  EXPECT_EQ(buf.dropped(), 0u);
  const auto snap = buf.snapshot();
  ASSERT_EQ(snap.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(snap[i].at, i);
}

TEST(TraceBufferTest, WraparoundKeepsNewestAndCountsDrops) {
  if (!kTraceEnabled) GTEST_SKIP() << "built with FLECC_TRACE=OFF";
  TraceBuffer buf(8);
  for (int i = 0; i < 20; ++i) {
    buf.emit(ev(i, EventKind::kMsgSent, 1));
  }
  EXPECT_EQ(buf.emitted(), 20u);
  EXPECT_EQ(buf.dropped(), 12u);  // 20 emitted - 8 retained
  const auto snap = buf.snapshot();
  ASSERT_EQ(snap.size(), 8u);
  // Oldest-first: events 12..19 survive.
  for (int i = 0; i < 8; ++i) EXPECT_EQ(snap[i].at, 12 + i);
}

TEST(TraceBufferTest, WraparoundManyTimesStaysConsistent) {
  if (!kTraceEnabled) GTEST_SKIP() << "built with FLECC_TRACE=OFF";
  TraceBuffer buf(8);
  for (int round = 0; round < 100; ++round) {
    buf.emit(ev(round, EventKind::kOpStarted, 9, round + 1));
  }
  const auto snap = buf.snapshot();
  ASSERT_EQ(snap.size(), 8u);
  EXPECT_EQ(snap.front().at, 92);
  EXPECT_EQ(snap.back().at, 99);
  EXPECT_EQ(buf.dropped(), 92u);
}

TEST(TraceRecorderTest, MakeBufferIsIdempotentPerName) {
  TraceRecorder rec;
  TraceBuffer* a = rec.make_buffer("cm.0");
  TraceBuffer* b = rec.make_buffer("cm.0");
  TraceBuffer* c = rec.make_buffer("cm.1");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(rec.buffer_count(), 2u);
}

TEST(TraceRecorderTest, MergedSnapshotIsTimeSortedAcrossAgents) {
  if (!kTraceEnabled) GTEST_SKIP() << "built with FLECC_TRACE=OFF";
  TraceRecorder rec;
  TraceBuffer* cm0 = rec.make_buffer("cm.0");
  TraceBuffer* cm1 = rec.make_buffer("cm.1");
  TraceBuffer* dm = rec.make_buffer("dm");
  // Interleave three writers with deliberately shuffled timestamps.
  cm0->emit(ev(10, EventKind::kOpStarted, 1, 100));
  dm->emit(ev(12, EventKind::kMsgReceived, 3, 100));
  cm1->emit(ev(11, EventKind::kOpStarted, 2, 200));
  dm->emit(ev(14, EventKind::kMsgReceived, 3, 200));
  cm0->emit(ev(20, EventKind::kOpCompleted, 1, 100));
  cm1->emit(ev(16, EventKind::kOpCompleted, 2, 200));

  const auto merged = rec.snapshot();
  ASSERT_EQ(merged.size(), 6u);
  for (std::size_t i = 1; i < merged.size(); ++i) {
    EXPECT_LE(merged[i - 1].at, merged[i].at);
  }
  EXPECT_EQ(rec.total_emitted(), 6u);
  EXPECT_EQ(rec.total_dropped(), 0u);
  // Each span's lifecycle stays intact in the merge.
  int span100 = 0, span200 = 0;
  for (const auto& e : merged) {
    if (e.span == 100) ++span100;
    if (e.span == 200) ++span200;
  }
  EXPECT_EQ(span100, 3);
  EXPECT_EQ(span200, 3);
}

TEST(TraceRecorderTest, TieTimestampsKeepRegistrationOrder) {
  if (!kTraceEnabled) GTEST_SKIP() << "built with FLECC_TRACE=OFF";
  TraceRecorder rec;
  TraceBuffer* first = rec.make_buffer("a");
  TraceBuffer* second = rec.make_buffer("b");
  second->emit(ev(5, EventKind::kMsgSent, 2));
  first->emit(ev(5, EventKind::kMsgSent, 1));
  const auto merged = rec.snapshot();
  ASSERT_EQ(merged.size(), 2u);
  // Stable sort: buffer "a" registered first wins the tie.
  EXPECT_EQ(merged[0].agent, 1u);
  EXPECT_EQ(merged[1].agent, 2u);
}

TEST(TraceMacroTest, NullSinkIsSafe) {
  TraceBuffer* sink = nullptr;
  FLECC_TRACE_EVENT(sink, 0, EventKind::kMsgSent, Role::kOther, 1, 0, "x");
  SUCCEED();
}

TEST(TraceMacroTest, EmitsIntoNonNullSink) {
  TraceBuffer buf(8);
  TraceBuffer* sink = &buf;
  FLECC_TRACE_EVENT(sink, 33, EventKind::kDedupHit, Role::kDirectory, 5, 77,
                    "flecc.pullReq", 1, 2);
  if (!kTraceEnabled) {
    EXPECT_EQ(buf.emitted(), 0u);
    return;
  }
  ASSERT_EQ(buf.emitted(), 1u);
  const auto snap = buf.snapshot();
  EXPECT_EQ(snap[0].at, 33);
  EXPECT_EQ(snap[0].span, 77u);
  EXPECT_EQ(snap[0].kind, EventKind::kDedupHit);
}

TEST(TraceStringsTest, EveryKindAndRoleHasAName) {
  for (int k = 0; k <= static_cast<int>(EventKind::kMonitorWarning); ++k) {
    EXPECT_STRNE(to_string(static_cast<EventKind>(k)), "unknown");
  }
  for (int r = 0; r <= static_cast<int>(Role::kOther); ++r) {
    EXPECT_STRNE(to_string(static_cast<Role>(r)), "unknown");
  }
}

/// Counts delivered events (sink-registration tests below).
class CountingSink : public TraceSink {
 public:
  void on_event(const TraceEvent&) override { ++seen; }
  std::size_t seen = 0;
};

// Regression test for the sink-registration ordering bug: a sink
// attached to the recorder must cover buffers created BOTH before and
// after the attach_sink call — late-created per-agent buffers used to
// miss the sink entirely.
TEST(TraceSinkTest, AttachCoversExistingAndFutureBuffers) {
  if (!kTraceEnabled) GTEST_SKIP() << "built with FLECC_TRACE=OFF";
  TraceRecorder rec(16);
  TraceBuffer* early = rec.make_buffer("early");
  CountingSink sink;
  rec.attach_sink(&sink);
  TraceBuffer* late = rec.make_buffer("late");  // created after attach

  early->emit(ev(1, EventKind::kMsgSent, 1));
  late->emit(ev(2, EventKind::kMsgSent, 2));
  EXPECT_EQ(sink.seen, 2u);

  // nullptr detaches everywhere, existing and future buffers alike.
  rec.attach_sink(nullptr);
  early->emit(ev(3, EventKind::kMsgSent, 1));
  rec.make_buffer("post-detach")->emit(ev(4, EventKind::kMsgSent, 3));
  EXPECT_EQ(sink.seen, 2u);
}

TEST(TraceSinkTest, SinkSeesClockStampedEvents) {
  if (!kTraceEnabled) GTEST_SKIP() << "built with FLECC_TRACE=OFF";

  class CaptureSink : public TraceSink {
   public:
    void on_event(const TraceEvent& e) override { last = e; }
    TraceEvent last{};
  };

  TraceRecorder rec(16);
  CaptureSink sink;
  rec.attach_sink(&sink);
  TraceBuffer* buf = rec.make_buffer("cm.1");
  CausalClock clock;
  buf->set_clock(&clock);
  clock.tick();
  clock.tick();
  buf->emit(ev(5, EventKind::kOpStarted, 7, 9, "pull"));
  EXPECT_EQ(sink.last.clock, clock.value());
  EXPECT_EQ(sink.last.span, 9u);
  // The ring stores the same stamped event the sink saw.
  EXPECT_EQ(buf->snapshot().back().clock, clock.value());
}

}  // namespace
}  // namespace flecc::obs
