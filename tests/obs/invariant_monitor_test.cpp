// InvariantMonitor unit tests over synthetic event streams: each
// invariant (I1-I4, causality) both passes on a conforming stream and
// fires on a minimally mutated one, plus the liveness warnings, the
// feedback filter, and metrics export. These are pure analysis-side
// tests: they run identically under FLECC_TRACE=OFF because the
// monitor consumes plain TraceEvent values.
#include "obs/monitor/invariant_monitor.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace flecc::obs::monitor {
namespace {

constexpr net::Address kDir{99, 1};
constexpr net::Address kA{1, 1};
constexpr net::Address kB{2, 1};
constexpr std::uint64_t kViewA = 101;
constexpr std::uint64_t kViewB = 102;

TraceEvent cm(sim::Time at, net::Address who, EventKind kind,
              std::uint64_t span, const char* label, std::uint64_t a = 0,
              std::uint64_t b = 0, std::uint64_t clock = 0) {
  TraceEvent e = make_event(at, kind, Role::kCacheManager, agent_key(who),
                            span, label, a, b);
  e.clock = clock;
  return e;
}

TraceEvent dm(sim::Time at, EventKind kind, std::uint64_t span,
              const char* label, std::uint64_t a = 0, std::uint64_t b = 0,
              std::uint64_t clock = 0) {
  TraceEvent e = make_event(at, kind, Role::kDirectory, agent_key(kDir),
                            span, label, a, b);
  e.clock = clock;
  return e;
}

/// A conforming strong-mode round: A acquires (becoming the exclusive
/// holder), then B acquires after the directory invalidates A.
std::vector<TraceEvent> clean_acquire_round() {
  const std::uint64_t sa = span_id(kA, 1);
  const std::uint64_t sb = span_id(kB, 1);
  return {
      cm(10, kA, EventKind::kOpStarted, sa, "acquire", kViewA, 0, 1),
      cm(11, kA, EventKind::kMsgSent, sa, "flecc.acquire_req", 0, 0, 2),
      dm(20, EventKind::kMsgReceived, sa, "flecc.acquire_req", 0, 0, 3),
      dm(21, EventKind::kMsgSent, sa, "flecc.acquire_grant", 0, 0, 4),
      cm(30, kA, EventKind::kOpCompleted, sa, "acquire", 0, 0, 5),

      cm(40, kB, EventKind::kOpStarted, sb, "acquire", kViewB, 0, 1),
      cm(41, kB, EventKind::kMsgSent, sb, "flecc.acquire_req", 0, 0, 2),
      dm(50, EventKind::kMsgReceived, sb, "flecc.acquire_req", 0, 0, 6),
      // The directory does its invalidation duty towards A (b = view)...
      dm(51, EventKind::kMsgSent, 0, "flecc.invalidate_req", 7, kViewA, 7),
      cm(60, kA, EventKind::kMsgSent, 0, "flecc.invalidate_ack", 7, 0, 8),
      // ...before granting B.
      dm(70, EventKind::kMsgSent, sb, "flecc.acquire_grant", 0, 0, 9),
      cm(80, kB, EventKind::kOpCompleted, sb, "acquire", 0, 0, 10),
  };
}

TEST(InvariantMonitorTest, CleanAcquireRoundPasses) {
  InvariantMonitor mon;
  mon.run(clean_acquire_round());
  EXPECT_TRUE(mon.violations().empty()) << mon.health_report();
  EXPECT_EQ(mon.check_count(Invariant::kExclusivity), 2u);
  EXPECT_EQ(mon.events_seen(), 12u);
}

TEST(InvariantMonitorTest, I1FiresOnGrantWithoutInvalidation) {
  // Remove the invalidate_req/ack pair: B is granted while A still
  // holds a copy the directory never asked to surrender.
  auto events = clean_acquire_round();
  events.erase(events.begin() + 8, events.begin() + 10);
  InvariantMonitor mon;
  mon.run(events);
  EXPECT_EQ(mon.violation_count(Invariant::kExclusivity), 1u);
  ASSERT_FALSE(mon.violations().empty());
  EXPECT_EQ(mon.violations()[0].invariant, Invariant::kExclusivity);
}

TEST(InvariantMonitorTest, I1ToleratesCrashTimeoutRounds) {
  // A never acks (crashed), but the directory DID send the
  // invalidate_req — the grant after the liveness timeout is legal.
  auto events = clean_acquire_round();
  events.erase(events.begin() + 9);  // drop only A's invalidate_ack
  InvariantMonitor mon;
  mon.run(events);
  EXPECT_EQ(mon.violation_count(Invariant::kExclusivity), 0u)
      << mon.health_report();
}

/// A dirty fetch round: B extracts (dirty FetchReply, token 5) and the
/// directory merges it once over the live path.
std::vector<TraceEvent> clean_fetch_merge() {
  const std::uint64_t sb = span_id(kB, 3);
  return {
      cm(10, kB, EventKind::kOpStarted, sb, "pull", kViewB, 0, 1),
      // b=1: the reply carries a dirty image; a = fetch token.
      cm(20, kB, EventKind::kMsgSent, 0, "flecc.fetch_reply", 5, 1, 2),
      dm(30, EventKind::kMergeApplied, 0, "fetch", 5, kViewB, 3),
      cm(40, kB, EventKind::kOpCompleted, sb, "pull", 0, 0, 4),
  };
}

TEST(InvariantMonitorTest, SingleMergePasses) {
  InvariantMonitor mon;
  mon.run(clean_fetch_merge());
  EXPECT_TRUE(mon.violations().empty()) << mon.health_report();
  EXPECT_EQ(mon.check_count(Invariant::kNoLostUpdate), 1u);
}

TEST(InvariantMonitorTest, I2FiresOnDoubleMerge) {
  auto events = clean_fetch_merge();
  // The same extraction (token 5, view B) merges again via an echo.
  events.push_back(dm(50, EventKind::kMergeApplied, 0, "echo.fetch", 5,
                      kViewB, 5));
  InvariantMonitor mon;
  mon.run(events);
  EXPECT_EQ(mon.violation_count(Invariant::kExactlyOnceMerge), 1u);
}

TEST(InvariantMonitorTest, RetransmittedExtractionIsNotADoubleMerge) {
  auto events = clean_fetch_merge();
  // The CM re-sends the same dirty reply (loss recovery); only one
  // merge happens. Dedup at the directory must keep this clean.
  events.insert(events.begin() + 2,
                cm(25, kB, EventKind::kMsgRetransmitted, 0,
                   "flecc.fetch_reply", 5, 1, 3));
  InvariantMonitor mon;
  mon.run(events);
  EXPECT_TRUE(mon.violations().empty()) << mon.health_report();
}

TEST(InvariantMonitorTest, I3FiresWhenAPushCompletesOverALostExtraction) {
  const std::uint64_t sb = span_id(kB, 3);
  const std::uint64_t sp = span_id(kB, 4);
  std::vector<TraceEvent> events = {
      cm(10, kB, EventKind::kOpStarted, sb, "pull", kViewB, 0, 1),
      cm(20, kB, EventKind::kMsgSent, 0, "flecc.fetch_reply", 5, 1, 2),
      // merge never arrives (lost, no echo), yet a later push completes:
      cm(40, kB, EventKind::kOpCompleted, sb, "pull", 0, 0, 4),
      cm(50, kB, EventKind::kOpStarted, sp, "push", kViewB, 0, 5),
      cm(51, kB, EventKind::kMsgSent, sp, "flecc.push_update", 0, 1, 6),
      dm(60, EventKind::kMergeApplied, sp, "push", 0, kViewB, 7),
      cm(70, kB, EventKind::kOpCompleted, sp, "push", 0, 0, 8),
  };
  InvariantMonitor mon;
  mon.run(events);
  EXPECT_EQ(mon.violation_count(Invariant::kNoLostUpdate), 1u);
  // The push's own image DID merge — exactly one I3 finding.
  EXPECT_EQ(mon.violations().size(), 1u) << mon.health_report();
}

TEST(InvariantMonitorTest, UnmergedExtractionAtEndOfTraceIsAWarning) {
  auto events = clean_fetch_merge();
  events.erase(events.begin() + 2);  // merge missing, but no later push
  InvariantMonitor mon;
  mon.run(events);
  EXPECT_TRUE(mon.violations().empty()) << mon.health_report();
  ASSERT_EQ(mon.warnings().size(), 1u);
  EXPECT_NE(mon.warnings()[0].detail.find("unmerged"), std::string::npos);
}

TEST(InvariantMonitorTest, I4FiresOnPullWhileStrong) {
  const std::uint64_t sp = span_id(kA, 9);
  std::vector<TraceEvent> events = {
      cm(10, kA, EventKind::kOpStarted, span_id(kA, 1), "init", kViewA, 0, 1),
      cm(20, kA, EventKind::kOpCompleted, span_id(kA, 1), "init", 0, 0, 2),
      cm(30, kA, EventKind::kModeSwitch, 0, "strong", 0, 0, 3),
      cm(40, kA, EventKind::kOpStarted, sp, "pull", kViewA, 0, 4),
      cm(50, kA, EventKind::kOpCompleted, sp, "pull", 0, 0, 5),
  };
  InvariantMonitor mon;
  mon.run(events);
  EXPECT_EQ(mon.violation_count(Invariant::kModeQuiescence), 1u);

  // Back in weak mode the same pull is fine.
  events[2] = cm(30, kA, EventKind::kModeSwitch, 0, "weak", 0, 0, 3);
  InvariantMonitor mon2;
  mon2.run(events);
  EXPECT_EQ(mon2.violation_count(Invariant::kModeQuiescence), 0u);
}

TEST(InvariantMonitorTest, I4ToleratesPullsQueuedBeforeTheStrongSwitch) {
  // FIFO drain: a pull ENQUEUED while still weak may complete after
  // the switch ack without violating quiescence; only pulls issued
  // after the switch (no weak-mode enqueue on record) fire.
  const std::uint64_t sp1 = span_id(kA, 9);
  const std::uint64_t sp2 = span_id(kA, 11);
  std::vector<TraceEvent> events = {
      cm(10, kA, EventKind::kOpStarted, span_id(kA, 1), "init", kViewA, 0, 1),
      cm(20, kA, EventKind::kOpCompleted, span_id(kA, 1), "init", 0, 0, 2),
      cm(25, kA, EventKind::kOpEnqueued, 0, "pull", 1, 0, 3),  // still weak
      cm(30, kA, EventKind::kModeSwitch, 0, "strong", 0, 0, 4),
      cm(40, kA, EventKind::kOpStarted, sp1, "pull", kViewA, 0, 5),
      cm(50, kA, EventKind::kOpCompleted, sp1, "pull", 0, 0, 6),  // queued: ok
      cm(55, kA, EventKind::kOpEnqueued, 0, "pull", 1, 0, 7),  // while strong
      cm(60, kA, EventKind::kOpStarted, sp2, "pull", kViewA, 0, 8),
      cm(70, kA, EventKind::kOpCompleted, sp2, "pull", 0, 0, 9),  // fires
  };
  InvariantMonitor mon;
  mon.run(events);
  EXPECT_EQ(mon.check_count(Invariant::kModeQuiescence), 2u);
  EXPECT_EQ(mon.violation_count(Invariant::kModeQuiescence), 1u);
  ASSERT_EQ(mon.violations().size(), 1u);
  EXPECT_EQ(mon.violations()[0].span, sp2);
}

TEST(InvariantMonitorTest, CausalityFiresOnClockRegression) {
  std::vector<TraceEvent> events = {
      cm(10, kA, EventKind::kMsgSent, 0, "flecc.heartbeat", 0, 0, 9),
      cm(20, kA, EventKind::kMsgSent, 0, "flecc.heartbeat", 0, 0, 3),
  };
  InvariantMonitor mon;
  mon.run(events);
  EXPECT_EQ(mon.violation_count(Invariant::kCausality), 1u);
}

TEST(InvariantMonitorTest, CausalityFiresOnReplyBeforeRequest) {
  const std::uint64_t sa = span_id(kA, 1);
  std::vector<TraceEvent> events = {
      cm(10, kA, EventKind::kOpStarted, sa, "pull", kViewA, 0, 5),
      cm(11, kA, EventKind::kMsgSent, sa, "flecc.pull_req", 0, 0, 6),
      // The directory's span event carries a stamp NOT past the send:
      // impossible if it really observed the request.
      dm(20, EventKind::kMsgReceived, sa, "flecc.pull_req", 0, 0, 4),
  };
  InvariantMonitor mon;
  mon.run(events);
  EXPECT_GE(mon.violation_count(Invariant::kCausality), 1u);
}

TEST(InvariantMonitorTest, ZeroClocksAreSkippedNotViolations) {
  // FLECC_TRACE=OFF senders and fabric drops stamp no clock; a mix of
  // stamped and unstamped events must not trip causality.
  std::vector<TraceEvent> events = {
      cm(10, kA, EventKind::kMsgSent, 0, "flecc.heartbeat", 0, 0, 9),
      cm(20, kA, EventKind::kMsgSent, 0, "flecc.heartbeat", 0, 0, 0),
      cm(30, kA, EventKind::kMsgSent, 0, "flecc.heartbeat", 0, 0, 10),
  };
  InvariantMonitor mon;
  mon.run(events);
  EXPECT_TRUE(mon.violations().empty()) << mon.health_report();
}

TEST(InvariantMonitorTest, HeartbeatStreakWarnsOnceAtThreshold) {
  InvariantMonitor::Config cfg;
  cfg.heartbeat_warn_streak = 3;
  InvariantMonitor mon(cfg);
  std::vector<TraceEvent> events;
  for (std::uint64_t streak = 1; streak <= 5; ++streak) {
    events.push_back(cm(10 * streak, kA, EventKind::kHeartbeatMiss, 0,
                        "heartbeat", streak));
  }
  mon.run(events);
  EXPECT_TRUE(mon.violations().empty());
  EXPECT_EQ(mon.warnings().size(), 1u);  // crossing the threshold, once
}

TEST(InvariantMonitorTest, StaleOpWarnsViaFinalize) {
  InvariantMonitor::Config cfg;
  cfg.max_op_age = 100;
  InvariantMonitor mon(cfg);
  mon.run({
      cm(10, kA, EventKind::kOpStarted, span_id(kA, 1), "push", kViewA, 0, 1),
      cm(500, kA, EventKind::kMsgSent, 0, "flecc.heartbeat", 0, 0, 2),
  });
  ASSERT_EQ(mon.warnings().size(), 1u);
  EXPECT_NE(mon.warnings()[0].detail.find("pending"), std::string::npos);
  EXPECT_TRUE(mon.violations().empty());
}

TEST(InvariantMonitorTest, IgnoresItsOwnFindingKindsOnInput) {
  InvariantMonitor mon;
  mon.on_event(make_event(10, EventKind::kInvariantViolation, Role::kOther,
                          0, 0, "I1.exclusivity"));
  mon.on_event(make_event(20, EventKind::kMonitorWarning, Role::kOther, 0, 0,
                          "monitor"));
  EXPECT_EQ(mon.events_seen(), 0u);
}

TEST(InvariantMonitorTest, EmitsFindingsIntoTheConfiguredBuffer) {
  if (!kTraceEnabled) GTEST_SKIP() << "built with FLECC_TRACE=OFF";
  TraceBuffer out(16);
  InvariantMonitor::Config cfg;
  cfg.out = &out;
  InvariantMonitor mon(cfg);
  auto events = clean_acquire_round();
  events.erase(events.begin() + 8, events.begin() + 10);  // I1 mutation
  mon.run(events);
  ASSERT_EQ(mon.violations().size(), 1u);
  const auto snap = out.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].kind, EventKind::kInvariantViolation);
  EXPECT_STREQ(snap[0].label, "I1.exclusivity");
}

TEST(InvariantMonitorTest, MonitorAttachedToItsOwnOutBufferDoesNotFeedBack) {
  if (!kTraceEnabled) GTEST_SKIP() << "built with FLECC_TRACE=OFF";
  TraceBuffer out(16);
  InvariantMonitor::Config cfg;
  cfg.out = &out;
  InvariantMonitor mon(cfg);
  out.set_sink(&mon);  // findings loop straight back into the monitor
  auto events = clean_acquire_round();
  events.erase(events.begin() + 8, events.begin() + 10);
  for (const auto& e : events) out.emit(e);
  mon.finalize();
  // One real violation; the fed-back finding event neither deadlocks
  // nor inflates the counts.
  EXPECT_EQ(mon.violations().size(), 1u);
  EXPECT_EQ(mon.events_seen(), events.size());
}

TEST(InvariantMonitorTest, ExportMetricsNamesAreStable) {
  InvariantMonitor mon;
  mon.run(clean_acquire_round());
  MetricsRegistry reg;
  mon.export_metrics(reg);
  EXPECT_EQ(reg.counter("monitor.events"), mon.events_seen());
  EXPECT_EQ(reg.counter("monitor.i1.checks"), 2u);
  EXPECT_EQ(reg.counter("monitor.i1.violations"), 0u);
  EXPECT_EQ(reg.counter("monitor.violations"), 0u);
  // Op latencies land as summaries under monitor.op.latency_us.<label>.
  EXPECT_EQ(reg.sample_sets().count("monitor.op.latency_us.acquire"), 1u);
  // Both agents completed a sync op, so both have a staleness sample.
  const auto it = reg.sample_sets().find("monitor.view.staleness_us");
  ASSERT_NE(it, reg.sample_sets().end());
  EXPECT_EQ(it->second.count(), 2u);
  // And the Prometheus rendering carries the flecc_ prefix, with the
  // op dimension rendered as a label rather than a name suffix.
  const std::string prom = reg.to_prometheus();
  EXPECT_NE(prom.find("flecc_monitor_events"), std::string::npos);
  EXPECT_NE(prom.find("flecc_monitor_op_latency_us{op=\"acquire\""),
            std::string::npos);
  EXPECT_NE(prom.find("quantile=\"0.999\""), std::string::npos);
}

// ---- directory crash-recovery epochs --------------------------------------

TEST(InvariantMonitorTest, RecoveryEpochGrantsExactlyOneRemerge) {
  // The checkpoint lost the merge marker (flush lag): after the
  // restart the revived round legally re-applies the same extraction
  // once...
  auto events = clean_fetch_merge();
  events.push_back(dm(100, EventKind::kRecoveryBegin, 0, "restart", 2, 1, 5));
  events.push_back(dm(150, EventKind::kRecoveryEnd, 0, "rebuilt", 2, 0, 6));
  events.push_back(
      dm(200, EventKind::kMergeApplied, 0, "late_fetch", 5, kViewB, 7));
  InvariantMonitor mon;
  mon.run(events);
  EXPECT_TRUE(mon.violations().empty()) << mon.health_report();

  // ...but a second merge within the SAME epoch still trips I2.
  events.push_back(
      dm(210, EventKind::kMergeApplied, 0, "echo.fetch", 5, kViewB, 8));
  InvariantMonitor strict;
  strict.run(events);
  EXPECT_EQ(strict.violation_count(Invariant::kExactlyOnceMerge), 1u);
}

TEST(InvariantMonitorTest, PreCrashExtractionIsExemptFromI3AfterRestart) {
  // Same shape as I3FiresWhenAPushCompletesOverALostExtraction, but the
  // directory crashed between the extraction and the push: the fetch
  // round died with the old incarnation, so the completed push proves
  // nothing. finalize() still surfaces the unmerged image as a warning.
  const std::uint64_t sb = span_id(kB, 3);
  const std::uint64_t sp = span_id(kB, 4);
  std::vector<TraceEvent> events = {
      cm(10, kB, EventKind::kOpStarted, sb, "pull", kViewB, 0, 1),
      cm(20, kB, EventKind::kMsgSent, 0, "flecc.fetch_reply", 5, 1, 2),
      cm(40, kB, EventKind::kOpCompleted, sb, "pull", 0, 0, 3),
      dm(50, EventKind::kRecoveryBegin, 0, "restart", 2, 0, 10),
      dm(60, EventKind::kRecoveryEnd, 0, "rebuilt", 2, 0, 11),
      cm(70, kB, EventKind::kOpStarted, sp, "push", kViewB, 0, 12),
      cm(71, kB, EventKind::kMsgSent, sp, "flecc.push_update", 0, 1, 13),
      dm(80, EventKind::kMergeApplied, sp, "push", 0, kViewB, 14),
      cm(90, kB, EventKind::kOpCompleted, sp, "push", 0, 0, 15),
  };
  InvariantMonitor mon;
  mon.run(events);
  EXPECT_EQ(mon.violation_count(Invariant::kNoLostUpdate), 0u)
      << mon.health_report();
  bool warned = false;
  for (const auto& w : mon.warnings()) {
    if (w.detail.find("unmerged") != std::string::npos) warned = true;
  }
  EXPECT_TRUE(warned) << mon.health_report();
}

TEST(InvariantMonitorTest, ReorderedOpsAcrossRestartDoNotTripI3) {
  // The reconnect after a directory restart re-queues an in-flight
  // kill BEHIND a fresh push; the push completes while the kill's
  // dirty image is still outstanding. The kill op is pending and still
  // retrying — its extraction is late, not lost.
  const std::uint64_t sk = span_id(kB, 3);
  const std::uint64_t sp = span_id(kB, 4);
  std::vector<TraceEvent> events = {
      cm(10, kB, EventKind::kOpStarted, sk, "kill", kViewB, 0, 1),
      dm(20, EventKind::kRecoveryBegin, 0, "restart", 2, 0, 2),
      dm(30, EventKind::kRecoveryEnd, 0, "rebuilt", 2, 0, 3),
      cm(35, kB, EventKind::kMsgSent, sk, "flecc.kill_req", 0, 1, 5),
      cm(40, kB, EventKind::kOpStarted, sp, "push", kViewB, 0, 6),
      cm(41, kB, EventKind::kMsgSent, sp, "flecc.push_update", 0, 1, 7),
      dm(50, EventKind::kMergeApplied, sp, "push", 0, kViewB, 8),
      cm(60, kB, EventKind::kOpCompleted, sp, "push", 0, 0, 9),
      // The kill re-issues, merges, and completes a moment later.
      dm(70, EventKind::kMergeApplied, sk, "kill", 0, kViewB, 11),
      cm(80, kB, EventKind::kOpCompleted, sk, "kill", 0, 0, 12),
  };
  InvariantMonitor mon;
  mon.run(events);
  EXPECT_TRUE(mon.violations().empty()) << mon.health_report();
}

TEST(InvariantMonitorTest, UnresolvedRecoveryEpochWarnsAndCounts) {
  auto events = clean_acquire_round();
  events.push_back(dm(100, EventKind::kRecoveryBegin, 0, "restart", 2, 0, 20));
  InvariantMonitor mon;
  mon.run(events);
  EXPECT_EQ(mon.unresolved_recovery_epochs(), 1u);
  bool warned = false;
  for (const auto& w : mon.warnings()) {
    if (w.detail.find("never completed") != std::string::npos) warned = true;
  }
  EXPECT_TRUE(warned) << mon.health_report();
  EXPECT_NE(mon.health_report().find("epochs=1 unresolved=1"),
            std::string::npos);

  events.push_back(dm(150, EventKind::kRecoveryEnd, 0, "rebuilt", 2, 0, 21));
  InvariantMonitor resolved;
  resolved.run(events);
  EXPECT_EQ(resolved.unresolved_recovery_epochs(), 0u);
}

TEST(InvariantMonitorTest, RecoveryMetricsAreExported) {
  std::vector<TraceEvent> events = {
      dm(10, EventKind::kRecoveryBegin, 0, "restart", 2, 3, 1),
      dm(20, EventKind::kMsgFenced, 0, "flecc.push_update", 1, 2, 2),
      cm(30, kA, EventKind::kMsgFenced, 0, "flecc.invalidate_req", 1, 2, 3),
      dm(40, EventKind::kRecoveryEnd, 0, "rebuilt", 2, 0, 4),
  };
  InvariantMonitor mon;
  mon.run(events);
  EXPECT_TRUE(mon.violations().empty()) << mon.health_report();
  MetricsRegistry reg;
  mon.export_metrics(reg);
  EXPECT_EQ(reg.counter("monitor.recovery.epochs"), 1u);
  EXPECT_EQ(reg.counter("monitor.recovery.unresolved"), 0u);
  EXPECT_EQ(reg.counter("monitor.recovery.fenced"), 2u);
  const auto it = reg.sample_sets().find("monitor.recovery.rebuild_us");
  ASSERT_NE(it, reg.sample_sets().end());
  EXPECT_EQ(it->second.count(), 1u);
}

TEST(InvariantMonitorTest, HealthReportShowsVerdict) {
  InvariantMonitor mon;
  mon.run(clean_acquire_round());
  EXPECT_NE(mon.health_report().find("monitor: PASS"), std::string::npos);

  auto events = clean_acquire_round();
  events.erase(events.begin() + 8, events.begin() + 10);
  InvariantMonitor bad;
  bad.run(events);
  EXPECT_NE(bad.health_report().find("1 violation(s)"), std::string::npos);
  EXPECT_NE(bad.health_report().find("I1.exclusivity"), std::string::npos);
}

}  // namespace
}  // namespace flecc::obs::monitor
