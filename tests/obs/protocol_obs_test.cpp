// End-to-end observability: run real protocol deployments through the
// airline testbed with a TraceRecorder attached and assert the trace
// tells the true story — spans pair up, lossy runs show retransmits
// and dedup hits, evictions show up on crash, and recording never
// changes what the protocol sends.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "airline/testbed.hpp"
#include "obs/analysis.hpp"
#include "obs/trace.hpp"

namespace flecc {
namespace {

using airline::FleccTestbed;
using airline::TestbedOptions;

TestbedOptions small_opts() {
  TestbedOptions opts;
  opts.n_agents = 6;
  opts.group_size = 3;
  opts.flights_per_group = 2;
  opts.validity_trigger = "(_age < 500)";
  return opts;
}

/// Drive a few reservation loops to completion.
void run_workload(FleccTestbed& tb, std::size_t ops = 3) {
  for (std::size_t i = 0; i < tb.agent_count(); ++i) {
    const auto flight = tb.assignment().agent_flights[i][0];
    tb.agent(i).run_reservation_loop(ops, flight, 1, /*pull_first=*/true);
  }
  tb.run();
}

TEST(ProtocolObsTest, CleanRunProducesPairedSpans) {
  if (!obs::kTraceEnabled) GTEST_SKIP() << "built with FLECC_TRACE=OFF";
  obs::TraceRecorder rec;
  TestbedOptions opts = small_opts();
  opts.trace = &rec;
  FleccTestbed tb(opts);
  tb.init_all_agents();
  run_workload(tb);

  const auto events = rec.snapshot();
  ASSERT_FALSE(events.empty());
  const auto s = obs::summarize(events);
  EXPECT_EQ(s.ops_started, s.ops_completed);
  EXPECT_EQ(s.ops_unfinished, 0u);
  EXPECT_EQ(s.retransmits, 0u);  // lossless fabric
  EXPECT_EQ(s.drops, 0u);
  // 6 agents * (1 init + 3 pulls) at minimum.
  EXPECT_GE(s.ops_completed, 24u);
  ASSERT_TRUE(s.op_latency_us.count("pull"));
  // 6 agents x 3 explicit pulls (plus any trigger-driven ones).
  EXPECT_GE(s.op_latency_us.at("pull").count(), 18u);
}

TEST(ProtocolObsTest, EveryOpSpanCrossesCmAndDm) {
  if (!obs::kTraceEnabled) GTEST_SKIP() << "built with FLECC_TRACE=OFF";
  obs::TraceRecorder rec;
  TestbedOptions opts = small_opts();
  opts.trace = &rec;
  FleccTestbed tb(opts);
  tb.init_all_agents();
  run_workload(tb, 1);

  const auto events = rec.snapshot();
  // For each span with an op_started, the directory must have logged at
  // least one msg_received under the same span (request id correlation).
  std::map<std::uint64_t, bool> dm_saw;
  for (const auto& e : events) {
    if (e.role == obs::Role::kDirectory && e.span != 0 &&
        e.kind == obs::EventKind::kMsgReceived) {
      dm_saw[e.span] = true;
    }
  }
  std::size_t started = 0;
  for (const auto& e : events) {
    if (e.kind != obs::EventKind::kOpStarted) continue;
    ++started;
    EXPECT_TRUE(dm_saw.count(e.span))
        << "span " << e.span << " (" << e.label
        << ") never reached the directory";
  }
  EXPECT_GE(started, 6u);
}

TEST(ProtocolObsTest, LossyRunShowsRetransmitsDropsAndDedup) {
  if (!obs::kTraceEnabled) GTEST_SKIP() << "built with FLECC_TRACE=OFF";
  obs::TraceRecorder rec;
  TestbedOptions opts = small_opts();
  opts.trace = &rec;
  opts.fabric_cfg.loss_probability = 0.25;
  opts.fabric_cfg.seed = 7;
  FleccTestbed tb(opts);
  tb.init_all_agents();
  run_workload(tb);

  const auto s = obs::summarize(rec.snapshot());
  EXPECT_GT(s.drops, 0u);
  EXPECT_GT(s.drops_by_reason.at("loss"), 0u);
  EXPECT_GT(s.retransmits, 0u);
  // Retransmitted requests whose originals got through produce replays.
  EXPECT_GT(s.dedup_hits, 0u);
  // The protocol still converged: every started op finished.
  EXPECT_EQ(s.ops_started, s.ops_completed);
}

TEST(ProtocolObsTest, CrashedViewGetsEvicted) {
  if (!obs::kTraceEnabled) GTEST_SKIP() << "built with FLECC_TRACE=OFF";
  obs::TraceRecorder rec;
  TestbedOptions opts = small_opts();
  opts.trace = &rec;
  opts.heartbeat_interval = sim::msec(100);
  opts.heartbeat_miss_limit = 2;
  opts.dir_cfg.liveness_timeout = sim::msec(400);
  FleccTestbed tb(opts);
  tb.init_all_agents();
  tb.crash_agent(0);
  tb.run_until(tb.simulator().now() + sim::seconds(5));
  tb.run();

  const auto s = obs::summarize(rec.snapshot());
  EXPECT_GE(s.evictions, 1u);
}

TEST(ProtocolObsTest, RecordingDoesNotPerturbTheProtocol) {
  auto count_messages = [](obs::TraceRecorder* rec) {
    TestbedOptions opts = small_opts();
    opts.trace = rec;
    opts.fabric_cfg.loss_probability = 0.10;
    opts.fabric_cfg.seed = 3;
    FleccTestbed tb(opts);
    tb.init_all_agents();
    run_workload(tb);
    return tb.fabric().sent_count();
  };
  obs::TraceRecorder rec;
  EXPECT_EQ(count_messages(nullptr), count_messages(&rec));
}

TEST(ProtocolObsTest, ModeSwitchIsTraced) {
  if (!obs::kTraceEnabled) GTEST_SKIP() << "built with FLECC_TRACE=OFF";
  obs::TraceRecorder rec;
  TestbedOptions opts = small_opts();
  opts.trace = &rec;
  FleccTestbed tb(opts);
  tb.init_all_agents();
  tb.agent(0).switch_mode(core::Mode::kStrong);
  tb.run();

  const auto s = obs::summarize(rec.snapshot());
  EXPECT_GE(s.mode_switches, 1u);
}

}  // namespace
}  // namespace flecc
