// MetricsRegistry tests: counters, absorb(), distributions, histogram
// lifecycles, and the CSV/plaintext exports.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace flecc::obs {
namespace {

TEST(MetricsRegistryTest, CountersAccumulate) {
  MetricsRegistry reg;
  reg.inc("msg.sent");
  reg.inc("msg.sent", 4);
  reg.inc("msg.dropped");
  EXPECT_EQ(reg.counter("msg.sent"), 5u);
  EXPECT_EQ(reg.counter("msg.dropped"), 1u);
  EXPECT_EQ(reg.counter("never.touched"), 0u);
}

TEST(MetricsRegistryTest, AbsorbPrefixesAgentCounters) {
  sim::CounterSet agent;
  agent.inc("op.retry", 3);
  agent.inc("heartbeat.sent", 7);
  MetricsRegistry reg;
  reg.absorb(agent, "cm.7.");
  reg.absorb(agent);  // unprefixed fold-in on top
  EXPECT_EQ(reg.counter("cm.7.op.retry"), 3u);
  EXPECT_EQ(reg.counter("cm.7.heartbeat.sent"), 7u);
  EXPECT_EQ(reg.counter("op.retry"), 3u);
}

TEST(MetricsRegistryTest, ObserveFeedsStatAndSamples) {
  MetricsRegistry reg;
  reg.observe("latency", 10.0);
  reg.observe("latency", 20.0);
  reg.observe("latency", 30.0);
  EXPECT_EQ(reg.stat("latency").count(), 3u);
  EXPECT_DOUBLE_EQ(reg.stat("latency").mean(), 20.0);
  EXPECT_DOUBLE_EQ(reg.samples("latency").median(), 20.0);
}

TEST(MetricsRegistryTest, HistogramCreatedOnceThenReused) {
  MetricsRegistry reg;
  sim::Histogram& h = reg.histogram("lat", 0.0, 100.0, 10);
  EXPECT_EQ(&reg.histogram("lat", 0.0, 999.0, 3), &h);  // params ignored
  EXPECT_EQ(h.bins(), 10u);
  EXPECT_EQ(reg.find_histogram("lat"), &h);
  EXPECT_EQ(reg.find_histogram("nope"), nullptr);

  // observe() routes into an existing histogram of the same name.
  reg.observe("lat", 5.0);
  reg.observe("lat", 95.0);
  reg.observe("lat", 400.0);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
}

TEST(MetricsRegistryTest, CsvHasCounterStatAndQuantileRows) {
  MetricsRegistry reg;
  reg.inc("msg.sent", 9);
  reg.observe("latency", 1.0);
  reg.observe("latency", 3.0);
  const std::string csv = reg.to_csv();
  EXPECT_NE(csv.find("counter,msg.sent,value,9"), std::string::npos);
  EXPECT_NE(csv.find("stat,latency,count,2"), std::string::npos);
  EXPECT_NE(csv.find("quantile,latency,p50,"), std::string::npos);
  EXPECT_NE(csv.find("quantile,latency,p99,"), std::string::npos);
}

TEST(MetricsRegistryTest, ToStringSummarizesBoth) {
  MetricsRegistry reg;
  reg.inc("evictions", 2);
  reg.observe("lat", 4.0);
  const std::string text = reg.to_string();
  EXPECT_NE(text.find("evictions"), std::string::npos);
  EXPECT_NE(text.find("lat"), std::string::npos);
}

}  // namespace
}  // namespace flecc::obs
