// Prometheus text-exposition plumbing: name/label sanitization,
// escape edge cases, family splitting, the grouped Writer, and the
// validator that the tests and the CI telemetry job share. The
// validator is itself under test here — both directions: clean
// documents pass, and each class of malformation is caught.
#include "obs/prom.hpp"

#include <gtest/gtest.h>

#include "obs/metrics.hpp"

namespace prom = flecc::obs::prom;

// ---- sanitization and escaping ---------------------------------------------

TEST(PromFormatTest, MetricNameSanitizes) {
  EXPECT_EQ(prom::metric_name("op.pull.latency_us"),
            "flecc_op_pull_latency_us");
  EXPECT_EQ(prom::metric_name("cm.3.msg.sent"), "flecc_cm_3_msg_sent");
  EXPECT_EQ(prom::metric_name("weird-name +x"), "flecc_weird_name__x");
  EXPECT_EQ(prom::metric_name(""), "flecc_");
}

TEST(PromFormatTest, LabelKeyCoercion) {
  EXPECT_EQ(prom::label_key("view"), "view");
  EXPECT_EQ(prom::label_key("9lives"), "_9lives");
  EXPECT_EQ(prom::label_key("a-b.c"), "a_b_c");
  EXPECT_EQ(prom::label_key(""), "_");
}

TEST(PromFormatTest, LabelValueEscapes) {
  EXPECT_EQ(prom::escape_label_value("plain"), "plain");
  EXPECT_EQ(prom::escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(prom::escape_label_value("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(prom::escape_label_value("line1\nline2"), "line1\\nline2");
}

TEST(PromFormatTest, HelpEscapes) {
  // Quotes are legal verbatim in HELP; backslash and newline are not.
  EXPECT_EQ(prom::escape_help("a \"quoted\" word"), "a \"quoted\" word");
  EXPECT_EQ(prom::escape_help("a\\b\nc"), "a\\\\b\\nc");
}

TEST(PromFormatTest, FormatValue) {
  EXPECT_EQ(prom::format_value(42), "42");
  EXPECT_EQ(prom::format_value(0), "0");
  EXPECT_EQ(prom::format_value(-17), "-17");
  // Non-integers keep their fractional part.
  EXPECT_NE(prom::format_value(2.5).find('.'), std::string::npos);
}

// ---- family splitting ------------------------------------------------------

TEST(PromFormatTest, SplitFamilyRecognizesDimensions) {
  const auto shed = prom::split_family("net.flow.shed.Pull");
  ASSERT_TRUE(shed.has_value());
  EXPECT_EQ(shed->base, "net.flow.shed");
  EXPECT_EQ(shed->label_k, "type");
  EXPECT_EQ(shed->label_v, "Pull");

  const auto dropped = prom::split_family("net.msg.dropped.partition");
  ASSERT_TRUE(dropped.has_value());
  EXPECT_EQ(dropped->base, "net.msg.dropped");
  EXPECT_EQ(dropped->label_k, "reason");
  EXPECT_EQ(dropped->label_v, "partition");

  // Any prefix depth, including absorbed per-agent prefixes.
  const auto deep = prom::split_family("cm.3.msg.sent.PushUpdate");
  ASSERT_TRUE(deep.has_value());
  EXPECT_EQ(deep->base, "cm.3.msg.sent");
  EXPECT_EQ(deep->label_v, "PushUpdate");
}

TEST(PromFormatTest, SplitFamilyLeavesPlainNamesAlone) {
  EXPECT_FALSE(prom::split_family("dm.op.acquire").has_value());
  EXPECT_FALSE(prom::split_family("msg.sent").has_value());  // no dimension
  EXPECT_FALSE(prom::split_family("monitor.events").has_value());
  // The family must sit on a segment boundary, not mid-word.
  EXPECT_FALSE(prom::split_family("xmsg.sent.Push").has_value());
}

// ---- writer ----------------------------------------------------------------

TEST(PromFormatTest, WriterGroupsAndEscapes) {
  prom::Writer w;
  w.family("flecc_test_total", "counter", "Line1\nLine2 \\ back");
  w.sample("flecc_test_total", {{"view", "3"}, {"q", "a\"b"}}, 7);
  w.family("flecc_other", "gauge", "Other");
  w.sample("flecc_other", {}, 2.5);
  const std::string doc = w.str();

  EXPECT_NE(doc.find("# HELP flecc_test_total Line1\\nLine2 \\\\ back\n"),
            std::string::npos);
  EXPECT_NE(doc.find("# TYPE flecc_test_total counter\n"), std::string::npos);
  // Labels render sorted by key so equal label sets compare equal.
  EXPECT_NE(doc.find("flecc_test_total{q=\"a\\\"b\",view=\"3\"} 7\n"),
            std::string::npos);
  EXPECT_NE(doc.find("flecc_other 2.5\n"), std::string::npos);
  EXPECT_TRUE(prom::validate(doc).empty());
}

TEST(PromFormatTest, WriterMergesDuplicateSeries) {
  // Two dotted names can sanitize to one series; the writer sums them
  // instead of emitting an (invalid) duplicate.
  prom::Writer w;
  w.family("flecc_x_total", "counter", "X.");
  w.sample("flecc_x_total", {}, 3);
  w.sample("flecc_x_total", {}, 4);
  const std::string doc = w.str();
  EXPECT_NE(doc.find("flecc_x_total 7\n"), std::string::npos);
  EXPECT_TRUE(prom::validate(doc).empty());
}

TEST(PromFormatTest, WriterSummaryChildren) {
  prom::Writer w;
  w.family("flecc_lat_us", "summary", "Latency.");
  w.sample("flecc_lat_us", {{"quantile", "0.5"}}, 10);
  w.sample("flecc_lat_us", {{"quantile", "0.99"}}, 90);
  w.child_sample("flecc_lat_us", "_sum", {}, 1000);
  w.child_sample("flecc_lat_us", "_count", {}, 20);
  const std::string doc = w.str();
  EXPECT_NE(doc.find("flecc_lat_us{quantile=\"0.5\"} 10\n"),
            std::string::npos);
  EXPECT_NE(doc.find("flecc_lat_us_sum 1000\n"), std::string::npos);
  EXPECT_NE(doc.find("flecc_lat_us_count 20\n"), std::string::npos);
  EXPECT_TRUE(prom::validate(doc).empty());
}

// ---- validator: catching malformations -------------------------------------

namespace {

std::size_t issue_count(std::string_view doc) {
  return prom::validate(doc).size();
}

}  // namespace

TEST(PromFormatTest, ValidatorAcceptsMinimalDocument) {
  EXPECT_EQ(issue_count("# HELP a_total Help.\n# TYPE a_total counter\n"
                        "a_total 1\n"),
            0u);
  // HELP/TYPE are optional per family; bare samples are legal.
  EXPECT_EQ(issue_count("x 1\n"), 0u);
  // Inf/NaN spellings and timestamps parse.
  EXPECT_EQ(issue_count("x +Inf\ny NaN\nz 1 1700000000000\n"), 0u);
}

TEST(PromFormatTest, ValidatorRejectsBadNames) {
  EXPECT_GE(issue_count("9bad 1\n"), 1u);
  EXPECT_GE(issue_count("has-dash 1\n"), 1u);
  EXPECT_GE(issue_count("ok{9bad=\"v\"} 1\n"), 1u);
}

TEST(PromFormatTest, ValidatorRejectsBadEscapes) {
  // \q is not a legal label-value escape.
  EXPECT_GE(issue_count("x{l=\"a\\qb\"} 1\n"), 1u);
  // Unterminated label value.
  EXPECT_GE(issue_count("x{l=\"open} 1\n"), 1u);
  // Raw newline cannot appear inside a value (it ends the line).
  EXPECT_GE(issue_count("x{l=\"a\nb\"} 1\n"), 1u);
}

TEST(PromFormatTest, ValidatorRejectsStructuralProblems) {
  // Duplicate series.
  EXPECT_GE(issue_count("x 1\nx 2\n"), 1u);
  // Same labels, same name — still duplicate.
  EXPECT_GE(issue_count("x{a=\"1\"} 1\nx{a=\"1\"} 2\n"), 1u);
  // Interleaved family reopened later.
  EXPECT_GE(issue_count("a 1\nb 1\na{l=\"2\"} 2\n"), 1u);
  // TYPE after samples.
  EXPECT_GE(issue_count("a 1\n# TYPE a gauge\n"), 1u);
  // Two HELP lines for one family.
  EXPECT_GE(issue_count("# HELP a X.\n# HELP a Y.\na 1\n"), 1u);
  // Unknown TYPE.
  EXPECT_GE(issue_count("# TYPE a rate\na 1\n"), 1u);
  // The `_total` suffix on counters is OpenMetrics, not text-format
  // 0.0.4 — our writer emits it, but the validator must not demand it.
  EXPECT_EQ(issue_count("# TYPE a counter\na 1\n"), 0u);
  // Unparseable value.
  EXPECT_GE(issue_count("a one\n"), 1u);
}

// ---- MetricsRegistry exposition --------------------------------------------

TEST(PromFormatTest, MetricsRegistryExportsValidatorCleanDocument) {
  flecc::obs::MetricsRegistry reg;
  reg.inc("monitor.events", 10);
  reg.inc("net.msg.dropped.loss", 3);      // labeled family
  reg.inc("net.msg.dropped.partition", 2); // second value, same family
  reg.inc("cm.breaker.open", 1);
  for (int i = 0; i < 100; ++i) {
    reg.observe("monitor.op.latency_us.acquire", 10.0 + i);
  }
  const std::string doc = reg.to_prometheus();

  // HELP/TYPE present, counters carry _total, dimensions are labels.
  EXPECT_NE(doc.find("# HELP flecc_monitor_events_total"), std::string::npos);
  EXPECT_NE(doc.find("# TYPE flecc_monitor_events_total counter"),
            std::string::npos);
  EXPECT_NE(doc.find("flecc_net_msg_dropped_total{reason=\"loss\"} 3"),
            std::string::npos);
  EXPECT_NE(doc.find("flecc_net_msg_dropped_total{reason=\"partition\"} 2"),
            std::string::npos);
  EXPECT_NE(doc.find("flecc_monitor_op_latency_us{op=\"acquire\","
                     "quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(doc.find("flecc_monitor_op_latency_us_count{op=\"acquire\"} 100"),
            std::string::npos);

  const auto issues = prom::validate(doc);
  for (const auto& i : issues) ADD_FAILURE() << i.to_string();
  EXPECT_TRUE(issues.empty());
}
