#include "trigger/parser.hpp"

#include <gtest/gtest.h>

namespace flecc::trigger {
namespace {

std::string parsed(std::string_view src) { return to_string(*parse(src)); }

TEST(ParserTest, Primary) {
  EXPECT_EQ(parsed("42"), "42");
  EXPECT_EQ(parsed("x"), "x");
  EXPECT_EQ(parsed("true"), "1");
  EXPECT_EQ(parsed("false"), "0");
  EXPECT_EQ(parsed("(x)"), "x");
}

TEST(ParserTest, PrecedenceMulOverAdd) {
  EXPECT_EQ(parsed("1 + 2 * 3"), "(1 + (2 * 3))");
  EXPECT_EQ(parsed("(1 + 2) * 3"), "((1 + 2) * 3)");
}

TEST(ParserTest, PrecedenceRelationalOverLogical) {
  EXPECT_EQ(parsed("a < b && c > d"), "((a < b) && (c > d))");
}

TEST(ParserTest, PrecedenceAndOverOr) {
  EXPECT_EQ(parsed("a || b && c"), "(a || (b && c))");
}

TEST(ParserTest, PrecedenceEqualityBelowRelational) {
  EXPECT_EQ(parsed("a == b < c"), "(a == (b < c))");
}

TEST(ParserTest, LeftAssociativity) {
  EXPECT_EQ(parsed("1 - 2 - 3"), "((1 - 2) - 3)");
  EXPECT_EQ(parsed("8 / 4 / 2"), "((8 / 4) / 2)");
}

TEST(ParserTest, UnaryOperators) {
  EXPECT_EQ(parsed("-x"), "-(x)");
  EXPECT_EQ(parsed("!x"), "!(x)");
  EXPECT_EQ(parsed("!!x"), "!(!(x))");
  EXPECT_EQ(parsed("--3"), "-(-(3))");
  EXPECT_EQ(parsed("not x"), "!(x)");
}

TEST(ParserTest, UnaryBindsTighterThanBinary) {
  EXPECT_EQ(parsed("-a + b"), "(-(a) + b)");
  EXPECT_EQ(parsed("!a && b"), "(!(a) && b)");
}

TEST(ParserTest, PaperTrigger) {
  EXPECT_EQ(parsed("(t > 1500)"), "(t > 1500)");
}

TEST(ParserTest, ComplexExpression) {
  EXPECT_EQ(parsed("(t > 1500) && (pendingSales >= 3 || !urgent)"),
            "((t > 1500) && ((pendingSales >= 3) || !(urgent)))");
}

TEST(ParserTest, CollectVariablesSortedUnique) {
  const auto node = parse("b + a * b - t / a");
  EXPECT_EQ(collect_variables(*node),
            (std::vector<std::string>{"a", "b", "t"}));
}

TEST(ParserTest, CollectVariablesNoneForConstants) {
  EXPECT_TRUE(collect_variables(*parse("1 + 2 * 3")).empty());
}

TEST(ParserTest, ErrorOnTrailingTokens) {
  EXPECT_THROW(parse("1 + 2 3"), ParseError);
  EXPECT_THROW(parse("x y"), ParseError);
}

TEST(ParserTest, ErrorOnUnbalancedParens) {
  EXPECT_THROW(parse("(1 + 2"), ParseError);
  EXPECT_THROW(parse("1 + 2)"), ParseError);
  EXPECT_THROW(parse(")("), ParseError);
}

TEST(ParserTest, ErrorOnMissingOperand) {
  EXPECT_THROW(parse("1 +"), ParseError);
  EXPECT_THROW(parse("&& 1"), ParseError);
  EXPECT_THROW(parse(""), ParseError);
  EXPECT_THROW(parse("()"), ParseError);
}

TEST(ParserTest, ErrorPositionsAreUseful) {
  try {
    parse("1 + )");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.pos(), 4u);
  }
}

}  // namespace
}  // namespace flecc::trigger
