#include "trigger/trigger.hpp"

#include <gtest/gtest.h>

#include "trigger/errors.hpp"
#include "trigger/parser.hpp"

namespace flecc::trigger {
namespace {

double eval_src(std::string_view src, const Env& env) {
  return eval(*parse(src), env);
}

double eval_src(std::string_view src) {
  return eval_src(src, VariableStore{});
}

TEST(EvalTest, Arithmetic) {
  EXPECT_DOUBLE_EQ(eval_src("1 + 2 * 3"), 7.0);
  EXPECT_DOUBLE_EQ(eval_src("(1 + 2) * 3"), 9.0);
  EXPECT_DOUBLE_EQ(eval_src("10 / 4"), 2.5);
  EXPECT_DOUBLE_EQ(eval_src("7 % 3"), 1.0);
  EXPECT_DOUBLE_EQ(eval_src("-5 + 2"), -3.0);
}

TEST(EvalTest, Comparisons) {
  EXPECT_DOUBLE_EQ(eval_src("1 < 2"), 1.0);
  EXPECT_DOUBLE_EQ(eval_src("2 < 1"), 0.0);
  EXPECT_DOUBLE_EQ(eval_src("2 <= 2"), 1.0);
  EXPECT_DOUBLE_EQ(eval_src("3 > 2"), 1.0);
  EXPECT_DOUBLE_EQ(eval_src("2 >= 3"), 0.0);
  EXPECT_DOUBLE_EQ(eval_src("2 == 2"), 1.0);
  EXPECT_DOUBLE_EQ(eval_src("2 != 2"), 0.0);
}

TEST(EvalTest, Logic) {
  EXPECT_DOUBLE_EQ(eval_src("true && false"), 0.0);
  EXPECT_DOUBLE_EQ(eval_src("true || false"), 1.0);
  EXPECT_DOUBLE_EQ(eval_src("!0"), 1.0);
  EXPECT_DOUBLE_EQ(eval_src("!3"), 0.0);
  EXPECT_DOUBLE_EQ(eval_src("2 && 3"), 1.0);  // truthiness normalizes
}

TEST(EvalTest, VariablesResolve) {
  VariableStore env{{"x", 4.0}, {"y", 2.5}};
  EXPECT_DOUBLE_EQ(eval_src("x * y", env), 10.0);
  EXPECT_DOUBLE_EQ(eval_src("x > y", env), 1.0);
}

TEST(EvalTest, UnknownVariableThrows) {
  EXPECT_THROW(eval_src("missing + 1"), EvalError);
}

TEST(EvalTest, DivisionByZeroThrows) {
  EXPECT_THROW(eval_src("1 / 0"), EvalError);
  EXPECT_THROW(eval_src("1 % 0"), EvalError);
}

TEST(EvalTest, ShortCircuitSkipsRhs) {
  // The RHS references an undefined variable; short-circuiting must
  // prevent its evaluation.
  EXPECT_DOUBLE_EQ(eval_src("false && boom"), 0.0);
  EXPECT_DOUBLE_EQ(eval_src("true || boom"), 1.0);
  EXPECT_THROW(eval_src("true && boom"), EvalError);
  EXPECT_THROW(eval_src("false || boom"), EvalError);
}

TEST(TriggerTest, PaperTimeTrigger) {
  const Trigger t("(t > 1500)");
  VariableStore env;
  EXPECT_FALSE(t.evaluate(1000.0, env));
  EXPECT_FALSE(t.evaluate(1500.0, env));
  EXPECT_TRUE(t.evaluate(1501.0, env));
}

TEST(TriggerTest, TimeOverridesEnv) {
  const Trigger t("t == 7");
  VariableStore env{{"t", 3.0}};
  EXPECT_TRUE(t.evaluate(7.0, env));  // explicit t wins over env's t=3
  EXPECT_FALSE(t.evaluate(8.0, env));
  EXPECT_FALSE(t.evaluate(env));  // env-only sees t=3
}

TEST(TriggerTest, MixedTimeAndVariables) {
  const Trigger t("(t > 1000) && (pendingSales >= 3)");
  VariableStore env{{"pendingSales", 5.0}};
  EXPECT_TRUE(t.evaluate(2000.0, env));
  env.set("pendingSales", 2.0);
  EXPECT_FALSE(t.evaluate(2000.0, env));
}

TEST(TriggerTest, VariablesListed) {
  const Trigger t("(t > 10) && x + y > 0");
  EXPECT_EQ(t.variables(), (std::vector<std::string>{"t", "x", "y"}));
  EXPECT_TRUE(t.references_time());
  const Trigger u("x > 0");
  EXPECT_FALSE(u.references_time());
}

TEST(TriggerTest, CopySemantics) {
  const Trigger t("x > 1");
  const Trigger copy = t;  // NOLINT(performance-unnecessary-copy-initialization)
  VariableStore env{{"x", 2.0}};
  EXPECT_TRUE(copy.evaluate(0.0, env));
  EXPECT_EQ(copy.source(), t.source());
}

TEST(TriggerTest, BadSourceThrowsParseError) {
  EXPECT_THROW(Trigger("1 +"), ParseError);
}

TEST(TriggerSetTest, FromSourcesEmptyMeansAbsent) {
  const auto ts = TriggerSet::from_sources("", "(t > 100)", "");
  EXPECT_FALSE(ts.push.has_value());
  ASSERT_TRUE(ts.pull.has_value());
  EXPECT_FALSE(ts.validity.has_value());
  EXPECT_EQ(ts.pull->source(), "(t > 100)");
}

TEST(LayeredEnvTest, FrontShadowsBack) {
  VariableStore front{{"x", 1.0}};
  VariableStore back{{"x", 2.0}, {"y", 3.0}};
  LayeredEnv env(front, back);
  EXPECT_DOUBLE_EQ(*env.lookup("x"), 1.0);
  EXPECT_DOUBLE_EQ(*env.lookup("y"), 3.0);
  EXPECT_FALSE(env.lookup("z").has_value());
}

TEST(FnEnvTest, DelegatesToLambda) {
  FnEnv env([](const std::string& name) -> std::optional<double> {
    if (name == "answer") return 42.0;
    return std::nullopt;
  });
  EXPECT_DOUBLE_EQ(*env.lookup("answer"), 42.0);
  EXPECT_FALSE(env.lookup("question").has_value());
}

// ---- table-driven evaluation sweep --------------------------------------

struct EvalCase {
  const char* src;
  double x;
  double expected;
};

class EvalSweepTest : public ::testing::TestWithParam<EvalCase> {};

TEST_P(EvalSweepTest, Evaluates) {
  const auto& c = GetParam();
  VariableStore env{{"x", c.x}};
  EXPECT_DOUBLE_EQ(eval_src(c.src, env), c.expected) << c.src;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, EvalSweepTest,
    ::testing::Values(
        EvalCase{"x * x", 3.0, 9.0}, EvalCase{"x * x", -3.0, 9.0},
        EvalCase{"x > 0 && x < 10", 5.0, 1.0},
        EvalCase{"x > 0 && x < 10", 15.0, 0.0},
        EvalCase{"x > 0 || x < -10", -20.0, 1.0},
        EvalCase{"!(x == 0)", 0.0, 0.0}, EvalCase{"!(x == 0)", 1.0, 1.0},
        EvalCase{"x % 4", 11.0, 3.0},
        EvalCase{"-x + 1", 4.0, -3.0},
        EvalCase{"(x + 1) * (x - 1)", 5.0, 24.0}));

}  // namespace
}  // namespace flecc::trigger
