// Builtin functions and constant folding in the trigger language.
#include <gtest/gtest.h>

#include "sim/rng.hpp"
#include "trigger/errors.hpp"
#include "trigger/parser.hpp"
#include "trigger/trigger.hpp"

namespace flecc::trigger {
namespace {

double eval_src(std::string_view src, const Env& env = VariableStore{}) {
  return eval(*parse(src), env);
}

TEST(FunctionsTest, MinMax) {
  EXPECT_DOUBLE_EQ(eval_src("min(3, 7)"), 3.0);
  EXPECT_DOUBLE_EQ(eval_src("max(3, 7)"), 7.0);
  EXPECT_DOUBLE_EQ(eval_src("min(5, 2, 8, 1)"), 1.0);
  EXPECT_DOUBLE_EQ(eval_src("max(5, 2, 8, 1)"), 8.0);
}

TEST(FunctionsTest, AbsFloorCeil) {
  EXPECT_DOUBLE_EQ(eval_src("abs(-4.5)"), 4.5);
  EXPECT_DOUBLE_EQ(eval_src("abs(4.5)"), 4.5);
  EXPECT_DOUBLE_EQ(eval_src("floor(2.7)"), 2.0);
  EXPECT_DOUBLE_EQ(eval_src("ceil(2.1)"), 3.0);
  EXPECT_DOUBLE_EQ(eval_src("floor(-2.1)"), -3.0);
}

TEST(FunctionsTest, Clamp) {
  EXPECT_DOUBLE_EQ(eval_src("clamp(5, 0, 10)"), 5.0);
  EXPECT_DOUBLE_EQ(eval_src("clamp(-5, 0, 10)"), 0.0);
  EXPECT_DOUBLE_EQ(eval_src("clamp(15, 0, 10)"), 10.0);
}

TEST(FunctionsTest, NestedAndMixed) {
  VariableStore env{{"x", 4.0}, {"y", -9.0}};
  EXPECT_DOUBLE_EQ(eval_src("max(x, abs(y)) + min(x, 1)", env), 10.0);
  EXPECT_DOUBLE_EQ(eval_src("clamp(x * y, -10, 10)", env), -10.0);
}

TEST(FunctionsTest, FunctionsInTriggerConditions) {
  const Trigger t("max(pendingA, pendingB) >= 5");
  VariableStore env{{"pendingA", 2.0}, {"pendingB", 7.0}};
  EXPECT_TRUE(t.evaluate(0.0, env));
  env.set("pendingB", 3.0);
  EXPECT_FALSE(t.evaluate(0.0, env));
}

TEST(FunctionsTest, ArityErrors) {
  EXPECT_THROW(parse("min(1)"), ParseError);
  EXPECT_THROW(parse("abs(1, 2)"), ParseError);
  EXPECT_THROW(parse("abs()"), ParseError);
  EXPECT_THROW(parse("clamp(1, 2)"), ParseError);
}

TEST(FunctionsTest, UnknownFunctionRejectedAtParse) {
  EXPECT_THROW(parse("teleport(1)"), ParseError);
}

TEST(FunctionsTest, IdentifierFollowedByParenIsACall) {
  // Variables named like builtins still work when not called.
  VariableStore env{{"min", 42.0}};
  EXPECT_DOUBLE_EQ(eval_src("min + 1", env), 43.0);
}

TEST(FunctionsTest, MalformedCallsRejected) {
  EXPECT_THROW(parse("min(1, 2"), ParseError);
  EXPECT_THROW(parse("min(1,, 2)"), ParseError);
  EXPECT_THROW(parse("min 1, 2)"), ParseError);
}

TEST(FunctionsTest, RenderRoundTrips) {
  EXPECT_EQ(to_string(*parse("clamp(x, 0, 10)")), "clamp(x, 0, 10)");
  EXPECT_EQ(to_string(*parse("min(a, max(b, c))")), "min(a, max(b, c))");
}

TEST(FunctionsTest, CollectVariablesSeesCallArgs) {
  EXPECT_EQ(collect_variables(*parse("min(a, b) + abs(t)")),
            (std::vector<std::string>{"a", "b", "t"}));
}

// ---- constant folding -----------------------------------------------------

TEST(FoldTest, FoldsPureConstantTrees) {
  EXPECT_EQ(to_string(*fold_constants(parse("1 + 2 * 3"))), "7");
  EXPECT_EQ(to_string(*fold_constants(parse("min(4, 2) + 1"))), "3");
  EXPECT_EQ(to_string(*fold_constants(parse("!(1 > 2)"))), "1");
}

TEST(FoldTest, FoldsConstantSubtreesOnly) {
  EXPECT_EQ(to_string(*fold_constants(parse("x + (2 * 3)"))), "(x + 6)");
  EXPECT_EQ(to_string(*fold_constants(parse("(t > 1000 + 500)"))),
            "(t > 1500)");
}

TEST(FoldTest, LeavesVariablesAlone) {
  EXPECT_EQ(to_string(*fold_constants(parse("x + y"))), "(x + y)");
}

TEST(FoldTest, KeepsFaultyConstantsForEvalTimeErrors) {
  // 1/0 must still raise EvalError, not disappear or crash at parse.
  auto folded = fold_constants(parse("1 / 0"));
  EXPECT_THROW(eval(*folded, VariableStore{}), EvalError);
  // ... and a short-circuit guard must still protect it.
  auto guarded = fold_constants(parse("false && (1 / 0 > 0)"));
  EXPECT_DOUBLE_EQ(eval(*guarded, VariableStore{}), 0.0);
}

TEST(FoldTest, CloneProducesIndependentEqualTree) {
  const auto original = parse("min(a, 3) && t > 1500");
  const auto copy = clone(*original);
  EXPECT_EQ(to_string(*original), to_string(*copy));
  EXPECT_EQ(collect_variables(*original), collect_variables(*copy));
}

class FoldPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FoldPropertyTest, FoldingPreservesSemantics) {
  // Random expressions over {x, y, constants}: folded and unfolded trees
  // must agree on every environment.
  sim::Rng rng(GetParam());
  const char* vars[] = {"x", "y"};

  std::function<std::string(int)> gen = [&](int depth) -> std::string {
    if (depth <= 0 || rng.chance(0.3)) {
      if (rng.chance(0.5)) {
        return std::to_string(rng.uniform_int(-5, 5));
      }
      return vars[rng.uniform_int(0, 1)];
    }
    const char* ops[] = {"+", "-", "*", "<", ">", "==", "&&", "||"};
    const char* op = ops[rng.uniform_int(0, 7)];
    return "(" + gen(depth - 1) + " " + op + " " + gen(depth - 1) + ")";
  };

  for (int iter = 0; iter < 50; ++iter) {
    const std::string src = gen(4);
    const auto plain = parse(src);
    const auto folded = fold_constants(parse(src));
    for (int e = 0; e < 5; ++e) {
      VariableStore env{
          {"x", static_cast<double>(rng.uniform_int(-5, 5))},
          {"y", static_cast<double>(rng.uniform_int(-5, 5))}};
      EXPECT_DOUBLE_EQ(eval(*plain, env), eval(*folded, env)) << src;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FoldPropertyTest,
                         ::testing::Values(101u, 202u, 303u));

}  // namespace
}  // namespace flecc::trigger
