#include "trigger/lexer.hpp"

#include <gtest/gtest.h>

namespace flecc::trigger {
namespace {

std::vector<TokenKind> kinds(std::string_view src) {
  std::vector<TokenKind> out;
  for (const auto& t : tokenize(src)) out.push_back(t.kind);
  return out;
}

TEST(LexerTest, EmptyYieldsEnd) {
  EXPECT_EQ(kinds(""), (std::vector<TokenKind>{TokenKind::kEnd}));
  EXPECT_EQ(kinds("   \t\n "), (std::vector<TokenKind>{TokenKind::kEnd}));
}

TEST(LexerTest, PaperExampleTokenizes) {
  // The trigger string from Figure 3: "(t > 1500)".
  const auto toks = tokenize("(t > 1500)");
  ASSERT_EQ(toks.size(), 6u);
  EXPECT_EQ(toks[0].kind, TokenKind::kLParen);
  EXPECT_EQ(toks[1].kind, TokenKind::kIdentifier);
  EXPECT_EQ(toks[1].text, "t");
  EXPECT_EQ(toks[2].kind, TokenKind::kGt);
  EXPECT_EQ(toks[3].kind, TokenKind::kNumber);
  EXPECT_DOUBLE_EQ(toks[3].number, 1500.0);
  EXPECT_EQ(toks[4].kind, TokenKind::kRParen);
  EXPECT_EQ(toks[5].kind, TokenKind::kEnd);
}

TEST(LexerTest, Numbers) {
  EXPECT_DOUBLE_EQ(tokenize("3.25")[0].number, 3.25);
  EXPECT_DOUBLE_EQ(tokenize("1e3")[0].number, 1000.0);
  EXPECT_DOUBLE_EQ(tokenize("2.5E-2")[0].number, 0.025);
  EXPECT_DOUBLE_EQ(tokenize(".5")[0].number, 0.5);
  EXPECT_DOUBLE_EQ(tokenize("0")[0].number, 0.0);
}

TEST(LexerTest, IdentifiersWithDotsAndUnderscores) {
  const auto toks = tokenize("_age avail.123 pendingSales");
  EXPECT_EQ(toks[0].text, "_age");
  EXPECT_EQ(toks[1].text, "avail.123");
  EXPECT_EQ(toks[2].text, "pendingSales");
}

TEST(LexerTest, AllOperators) {
  EXPECT_EQ(kinds("+ - * / % < <= > >= == != && || ! ( )"),
            (std::vector<TokenKind>{
                TokenKind::kPlus, TokenKind::kMinus, TokenKind::kStar,
                TokenKind::kSlash, TokenKind::kPercent, TokenKind::kLt,
                TokenKind::kLe, TokenKind::kGt, TokenKind::kGe,
                TokenKind::kEqEq, TokenKind::kNotEq, TokenKind::kAndAnd,
                TokenKind::kOrOr, TokenKind::kNot, TokenKind::kLParen,
                TokenKind::kRParen, TokenKind::kEnd}));
}

TEST(LexerTest, WordOperatorsAndLiterals) {
  EXPECT_EQ(kinds("true and false or not x"),
            (std::vector<TokenKind>{
                TokenKind::kTrue, TokenKind::kAndAnd, TokenKind::kFalse,
                TokenKind::kOrOr, TokenKind::kNot, TokenKind::kIdentifier,
                TokenKind::kEnd}));
}

TEST(LexerTest, NoSpacesNeeded) {
  EXPECT_EQ(kinds("(t>1500)&&(x<=2)"),
            (std::vector<TokenKind>{
                TokenKind::kLParen, TokenKind::kIdentifier, TokenKind::kGt,
                TokenKind::kNumber, TokenKind::kRParen, TokenKind::kAndAnd,
                TokenKind::kLParen, TokenKind::kIdentifier, TokenKind::kLe,
                TokenKind::kNumber, TokenKind::kRParen, TokenKind::kEnd}));
}

TEST(LexerTest, PositionsRecorded) {
  const auto toks = tokenize("a  <= 12");
  EXPECT_EQ(toks[0].pos, 0u);
  EXPECT_EQ(toks[1].pos, 3u);
  EXPECT_EQ(toks[2].pos, 6u);
}

TEST(LexerTest, SingleAmpersandRejected) {
  EXPECT_THROW(tokenize("a & b"), ParseError);
}

TEST(LexerTest, SinglePipeRejected) {
  EXPECT_THROW(tokenize("a | b"), ParseError);
}

TEST(LexerTest, SingleEqualsRejected) {
  EXPECT_THROW(tokenize("a = b"), ParseError);
}

TEST(LexerTest, UnknownCharacterRejected) {
  EXPECT_THROW(tokenize("a # b"), ParseError);
  try {
    tokenize("ab @");
  } catch (const ParseError& e) {
    EXPECT_EQ(e.pos(), 3u);
  }
}

TEST(LexerTest, BangAloneIsNot) {
  const auto toks = tokenize("!x");
  EXPECT_EQ(toks[0].kind, TokenKind::kNot);
  EXPECT_EQ(toks[1].kind, TokenKind::kIdentifier);
}

}  // namespace
}  // namespace flecc::trigger
