#include "psf/spec.hpp"

#include <gtest/gtest.h>

namespace flecc::psf {
namespace {

constexpr const char* kGoodSpec = R"spec(
# application
component air.ReservationSystem
  implements AirlineReservationInterface
  requires DatabaseInterface
  method browse
  method confirmTickets
  data Flights interval 100 199
end

view air.TravelAgent of air.ReservationSystem
  method browse
  method confirmTickets
  data Flights interval 100 149
end

# environment (three domains around the Internet)
node client domain=2
node internet
node server domain=1 trusted=yes
link client internet latency=35ms insecure
link internet server latency=200us bandwidth=500.5

# requests
request client server interface=AirlineReservationInterface privacy max_latency=5ms view=air.TravelAgent
)spec";

TEST(SpecParserTest, ParsesApplication) {
  const auto spec = parse_spec(kGoodSpec);
  ASSERT_EQ(spec.app.components.size(), 1u);
  const ComponentType& c = spec.app.components[0];
  EXPECT_EQ(c.name, "air.ReservationSystem");
  EXPECT_TRUE(c.implements_interface("AirlineReservationInterface"));
  EXPECT_EQ(c.requires_ifaces,
            (std::vector<std::string>{"DatabaseInterface"}));
  EXPECT_TRUE(c.has_method("browse"));
  EXPECT_TRUE(c.has_method("confirmTickets"));
  ASSERT_NE(c.data.find("Flights"), nullptr);
  EXPECT_EQ(*c.data.find("Flights"), props::Domain::interval(100, 199));

  ASSERT_EQ(spec.app.views.size(), 1u);
  const ViewSpec& v = spec.app.views[0];
  EXPECT_EQ(v.name, "air.TravelAgent");
  EXPECT_EQ(v.of_component, c.name);
  EXPECT_TRUE(is_deployable_view(v, c));
}

TEST(SpecParserTest, ParsesEnvironment) {
  const auto spec = parse_spec(kGoodSpec);
  EXPECT_EQ(spec.environment.node_count(), 3u);
  ASSERT_EQ(spec.node_ids.count("client"), 1u);
  const auto client = spec.node_ids.at("client");
  const auto server = spec.node_ids.at("server");
  EXPECT_EQ(spec.environment.node_attr(client, "domain"), "2");
  EXPECT_EQ(spec.environment.node_attr(server, "trusted"), "yes");
  const auto route = spec.environment.topology().route(client, server);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->latency, sim::msec(35) + sim::usec(200));
  EXPECT_FALSE(route->all_secure);
  EXPECT_DOUBLE_EQ(route->min_bandwidth, 500.5);
}

TEST(SpecParserTest, ParsesRequests) {
  const auto spec = parse_spec(kGoodSpec);
  ASSERT_EQ(spec.requests.size(), 1u);
  const ServiceRequest& req = spec.requests[0];
  EXPECT_EQ(req.client, spec.node_ids.at("client"));
  EXPECT_EQ(req.origin, spec.node_ids.at("server"));
  EXPECT_EQ(req.interface_name, "AirlineReservationInterface");
  EXPECT_TRUE(req.privacy_required);
  EXPECT_EQ(req.max_latency, sim::msec(5));
  EXPECT_EQ(req.view_component, "air.TravelAgent");
}

TEST(SpecParserTest, ParsedSpecFeedsThePlanner) {
  auto spec = parse_spec(kGoodSpec);
  const Planner planner(spec.environment);
  const auto plan = planner.plan(spec.requests[0]);
  ASSERT_TRUE(plan.has_value());
  // The 35ms hop busts the 5ms budget: a local view is deployed; the
  // insecure hop is wrapped for the privacy requirement.
  EXPECT_TRUE(plan->uses_local_view);
  EXPECT_EQ(plan->placements.size(), 3u);  // enc + dec + view
}

TEST(SpecParserTest, DiscreteValueDomains) {
  const auto spec = parse_spec(R"(
component c
  method m
  data Region values east west 7
end
)");
  const auto* d = spec.app.components[0].data.find("Region");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->size(), 3u);
  EXPECT_TRUE(d->contains(props::Value{std::string{"east"}}));
  EXPECT_TRUE(d->contains(props::Value{std::int64_t{7}}));
}

TEST(SpecParserTest, CommentsAndBlankLinesIgnored) {
  const auto spec = parse_spec("# nothing but comments\n\n  \n# more\n");
  EXPECT_TRUE(spec.app.components.empty());
  EXPECT_EQ(spec.environment.node_count(), 0u);
}

TEST(SpecParserTest, RejectsInvalidView) {
  EXPECT_THROW(parse_spec(R"(
component c
  method m
  data P interval 0 9
end
view v of c
  method otherMethod
end
)"),
               SpecError);
}

TEST(SpecParserTest, RejectsUnknownComponentReference) {
  try {
    parse_spec("view v of ghost\n  method m\nend\n");
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_EQ(e.line(), 3u);  // reported at the closing 'end'
    EXPECT_NE(std::string(e.what()).find("ghost"), std::string::npos);
  }
}

TEST(SpecParserTest, RejectsUnknownNodes) {
  EXPECT_THROW(parse_spec("link a b\n"), SpecError);
  EXPECT_THROW(parse_spec("node a\nrequest a ghost\n"), SpecError);
}

TEST(SpecParserTest, RejectsDuplicates) {
  EXPECT_THROW(parse_spec("node a\nnode a\n"), SpecError);
  EXPECT_THROW(parse_spec(
                   "component c\n method m\nend\ncomponent c\n method m\nend\n"),
               SpecError);
}

TEST(SpecParserTest, RejectsMalformedDirectives) {
  EXPECT_THROW(parse_spec("frobnicate\n"), SpecError);
  EXPECT_THROW(parse_spec("end\n"), SpecError);
  EXPECT_THROW(parse_spec("component c\n method m\n"), SpecError);  // no end
  EXPECT_THROW(parse_spec("component c\n implements\nend\n"), SpecError);
  EXPECT_THROW(parse_spec("component c\n data P interval 5 1\nend\n"),
               SpecError);
  EXPECT_THROW(parse_spec("node a flag\n"), SpecError);
}

TEST(SpecParserTest, RejectsBadDurationsAndNumbers) {
  EXPECT_THROW(parse_spec("node a\nnode b\nlink a b latency=fast\n"),
               SpecError);
  EXPECT_THROW(parse_spec("node a\nnode b\nlink a b latency=5h\n"),
               SpecError);
  EXPECT_THROW(parse_spec("node a\nnode b\nlink a b bandwidth=wide\n"),
               SpecError);
}

TEST(SpecParserTest, ErrorsCarryLineNumbers) {
  try {
    parse_spec("node a\nnode b\nbogus here\n");
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_EQ(e.line(), 3u);
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(SpecParserTest, RequestUnknownViewRejected) {
  EXPECT_THROW(parse_spec("node a\nnode b\nrequest a b view=ghost\n"),
               SpecError);
}

}  // namespace
}  // namespace flecc::psf
