#include "psf/monitor.hpp"

#include <gtest/gtest.h>

#include "psf/planner.hpp"

namespace flecc::psf {
namespace {

struct MonitorFixture : ::testing::Test {
  MonitorFixture() : monitor(env) {
    client = env.add_node("client");
    server = env.add_node("server");
    net::LinkSpec spec;
    spec.latency = sim::msec(1);
    spec.secure = true;
    link = env.connect(client, server, spec);
  }

  DeploymentPlan make_plan(bool privacy = false,
                           sim::Duration budget = sim::kTimeInfinity) {
    ServiceRequest req;
    req.client = client;
    req.origin = server;
    req.privacy_required = privacy;
    req.max_latency = budget;
    auto plan = Planner(env).plan(req);
    EXPECT_TRUE(plan.has_value());
    return *plan;
  }

  Environment env;
  Monitor monitor;
  net::NodeId client = 0, server = 0;
  net::LinkId link = 0;
};

TEST_F(MonitorFixture, ValidPlanStaysQuiet) {
  int violations = 0;
  monitor.watch(make_plan(),
                [&](const DeploymentPlan&, const std::string&) {
                  ++violations;
                });
  env.set_link_latency(link, sim::msec(2));  // harmless: no budget
  EXPECT_EQ(violations, 0);
  EXPECT_EQ(monitor.watched_count(), 1u);
}

TEST_F(MonitorFixture, LinkDownTriggersViolation) {
  std::string why;
  monitor.watch(make_plan(), [&](const DeploymentPlan&,
                                 const std::string& reason) { why = reason; });
  env.set_link_up(link, false);
  EXPECT_NE(why.find("down"), std::string::npos);
  EXPECT_EQ(monitor.watched_count(), 0u);  // fired watches are dropped
  EXPECT_EQ(monitor.violations_detected(), 1u);
}

TEST_F(MonitorFixture, SecurityDowngradeTriggersViolationForPrivacyPlans) {
  std::string why;
  monitor.watch(make_plan(/*privacy=*/true),
                [&](const DeploymentPlan&, const std::string& reason) {
                  why = reason;
                });
  env.set_link_secure(link, false);
  EXPECT_NE(why.find("insecure"), std::string::npos);
}

TEST_F(MonitorFixture, SecurityDowngradeIgnoredWithoutPrivacy) {
  int violations = 0;
  monitor.watch(make_plan(/*privacy=*/false),
                [&](const DeploymentPlan&, const std::string&) {
                  ++violations;
                });
  env.set_link_secure(link, false);
  EXPECT_EQ(violations, 0);
}

TEST_F(MonitorFixture, LatencyBudgetOverrunTriggersViolation) {
  std::string why;
  monitor.watch(make_plan(false, sim::msec(5)),
                [&](const DeploymentPlan&, const std::string& reason) {
                  why = reason;
                });
  env.set_link_latency(link, sim::msec(50));
  EXPECT_NE(why.find("latency"), std::string::npos);
}

TEST_F(MonitorFixture, LocalViewPlansSurviveNetworkTrouble) {
  // Add a view component so the planner can satisfy a tiny budget.
  ServiceRequest req;
  req.client = client;
  req.origin = server;
  req.max_latency = sim::usec(1);
  req.view_component = "air.TravelAgent";
  const auto plan = Planner(env).plan(req);
  ASSERT_TRUE(plan.has_value());
  ASSERT_TRUE(plan->uses_local_view);
  int violations = 0;
  monitor.watch(*plan, [&](const DeploymentPlan&, const std::string&) {
    ++violations;
  });
  env.set_link_up(link, false);  // the view keeps serving locally
  EXPECT_EQ(violations, 0);
}

TEST_F(MonitorFixture, CallbackMayRewatchReplannedDeployment) {
  // Adaptation loop: on violation, re-plan and watch the new plan.
  int replans = 0;
  Monitor::ViolationCallback on_violation =
      [&](const DeploymentPlan& broken, const std::string&) {
        ++replans;
        ServiceRequest req = broken.request;
        req.max_latency = sim::kTimeInfinity;  // relax and re-deploy
        const auto fresh = Planner(env).plan(req);
        ASSERT_TRUE(fresh.has_value());
        monitor.watch(*fresh,
                      [](const DeploymentPlan&, const std::string&) {});
      };
  monitor.watch(make_plan(false, sim::msec(5)), on_violation);
  env.set_link_latency(link, sim::msec(50));
  EXPECT_EQ(replans, 1);
  EXPECT_EQ(monitor.watched_count(), 1u);  // the replacement
}

TEST_F(MonitorFixture, UnwatchStopsTracking) {
  int violations = 0;
  const auto id = monitor.watch(
      make_plan(), [&](const DeploymentPlan&, const std::string&) {
        ++violations;
      });
  EXPECT_TRUE(monitor.unwatch(id));
  EXPECT_FALSE(monitor.unwatch(id));
  env.set_link_up(link, false);
  EXPECT_EQ(violations, 0);
}

}  // namespace
}  // namespace flecc::psf
