#include "psf/environment.hpp"

#include <gtest/gtest.h>

namespace flecc::psf {
namespace {

TEST(EnvironmentTest, BuildsTopologyWithAttrs) {
  Environment env;
  const auto a = env.add_node("gateway", {{"domain", "A"}});
  const auto b = env.add_node("server", {{"domain", "B"}});
  env.connect(a, b);
  EXPECT_EQ(env.node_count(), 2u);
  EXPECT_EQ(env.node_attr(a, "domain"), "A");
  EXPECT_EQ(env.node_attr(a, "missing"), "");
  EXPECT_TRUE(env.topology().route(a, b).has_value());
}

TEST(EnvironmentTest, NotifiesOnStructuralChanges) {
  Environment env;
  std::vector<Environment::ChangeKind> kinds;
  env.subscribe([&](const Environment::Change& c) { kinds.push_back(c.kind); });
  const auto a = env.add_node("a");
  const auto b = env.add_node("b");
  const auto l = env.connect(a, b);
  env.set_link_up(l, false);
  env.set_link_up(l, true);
  env.set_link_secure(l, false);
  env.set_link_latency(l, 123);
  EXPECT_EQ(kinds,
            (std::vector<Environment::ChangeKind>{
                Environment::ChangeKind::kNodeAdded,
                Environment::ChangeKind::kNodeAdded,
                Environment::ChangeKind::kLinkAdded,
                Environment::ChangeKind::kLinkDown,
                Environment::ChangeKind::kLinkUp,
                Environment::ChangeKind::kLinkUnsecured,
                Environment::ChangeKind::kLinkLatency}));
}

TEST(EnvironmentTest, NoNotificationForNoopChanges) {
  Environment env;
  const auto a = env.add_node("a");
  const auto b = env.add_node("b");
  const auto l = env.connect(a, b);
  int fired = 0;
  env.subscribe([&](const Environment::Change&) { ++fired; });
  env.set_link_up(l, true);      // already up
  env.set_link_secure(l, true);  // already secure
  EXPECT_EQ(fired, 0);
}

TEST(EnvironmentTest, UnsubscribeStopsDelivery) {
  Environment env;
  int fired = 0;
  const auto id = env.subscribe([&](const Environment::Change&) { ++fired; });
  env.add_node("a");
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(env.unsubscribe(id));
  EXPECT_FALSE(env.unsubscribe(id));
  env.add_node("b");
  EXPECT_EQ(fired, 1);
}

TEST(EnvironmentTest, ListenerMayUnsubscribeDuringCallback) {
  Environment env;
  Environment::SubscriptionId id = 0;
  int fired = 0;
  id = env.subscribe([&](const Environment::Change&) {
    ++fired;
    env.unsubscribe(id);
  });
  env.add_node("a");
  env.add_node("b");
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace flecc::psf
