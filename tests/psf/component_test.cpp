#include "psf/component.hpp"

#include <gtest/gtest.h>

namespace flecc::psf {
namespace {

ComponentType airline_component() {
  ComponentType c;
  c.name = "air.ReservationSystem";
  c.implements.push_back(
      InterfaceDesc{"AirlineReservationInterface", props::PropertySet{}});
  c.requires_ifaces.push_back("DatabaseInterface");
  c.methods = {"browse", "confirmTickets", "cancelTickets"};
  c.data.set("Flights", props::Domain::interval(100, 199));
  return c;
}

TEST(ComponentTypeTest, InterfaceAndMethodLookups) {
  const auto c = airline_component();
  EXPECT_TRUE(c.implements_interface("AirlineReservationInterface"));
  EXPECT_FALSE(c.implements_interface("Other"));
  EXPECT_TRUE(c.has_method("browse"));
  EXPECT_FALSE(c.has_method("refund"));
}

TEST(IsViewOfTest, SharedMethodsQualify) {
  const auto c = airline_component();
  ViewSpec v;
  v.name = "air.Browser";
  v.of_component = c.name;
  v.methods = {"browse"};
  EXPECT_TRUE(is_view_of(v, c));  // F_v ∩ F_c ≠ ∅
}

TEST(IsViewOfTest, SharedDataQualifies) {
  const auto c = airline_component();
  ViewSpec v;
  v.name = "air.DataMirror";
  v.of_component = c.name;
  v.data.set("Flights", props::Domain::interval(150, 160));
  EXPECT_TRUE(is_view_of(v, c));  // V_v ∩ V_c ≠ ∅
}

TEST(IsViewOfTest, NothingSharedDisqualifies) {
  const auto c = airline_component();
  ViewSpec v;
  v.name = "air.Unrelated";
  v.of_component = c.name;
  v.methods = {"somethingElse"};
  v.data.set("Hotels", props::Domain::interval(0, 10));
  EXPECT_FALSE(is_view_of(v, c));
}

TEST(IsViewOfTest, WrongComponentDisqualifies) {
  const auto c = airline_component();
  ViewSpec v;
  v.name = "air.Browser";
  v.of_component = "some.OtherComponent";
  v.methods = {"browse"};
  EXPECT_FALSE(is_view_of(v, c));
}

TEST(IsDeployableViewTest, AcceptsWellFormedView) {
  const auto c = airline_component();
  ViewSpec v;
  v.name = "air.TravelAgent";
  v.of_component = c.name;
  v.methods = {"browse", "confirmTickets"};
  v.data.set("Flights", props::Domain::interval(100, 120));
  std::string reason;
  EXPECT_TRUE(is_deployable_view(v, c, &reason)) << reason;
}

TEST(IsDeployableViewTest, RejectsUnknownMethod) {
  const auto c = airline_component();
  ViewSpec v;
  v.name = "air.Bad";
  v.of_component = c.name;
  v.methods = {"browse", "teleport"};
  std::string reason;
  EXPECT_FALSE(is_deployable_view(v, c, &reason));
  EXPECT_NE(reason.find("teleport"), std::string::npos);
}

TEST(IsDeployableViewTest, RejectsDataOverhang) {
  const auto c = airline_component();
  ViewSpec v;
  v.name = "air.Bad";
  v.of_component = c.name;
  v.methods = {"browse"};
  v.data.set("Flights", props::Domain::interval(150, 250));  // 200+ missing
  std::string reason;
  EXPECT_FALSE(is_deployable_view(v, c, &reason));
  EXPECT_NE(reason.find("subset"), std::string::npos);
}

TEST(IsDeployableViewTest, RejectsWrongComponent) {
  const auto c = airline_component();
  ViewSpec v;
  v.of_component = "other";
  std::string reason;
  EXPECT_FALSE(is_deployable_view(v, c, &reason));
}

TEST(IsDeployableViewTest, RejectsNothingShared) {
  const auto c = airline_component();
  ViewSpec v;
  v.name = "air.Empty";
  v.of_component = c.name;
  std::string reason;
  EXPECT_FALSE(is_deployable_view(v, c, &reason));
  EXPECT_NE(reason.find("neither"), std::string::npos);
}

}  // namespace
}  // namespace flecc::psf
