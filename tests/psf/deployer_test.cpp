#include "psf/deployer.hpp"

#include <gtest/gtest.h>

namespace flecc::psf {
namespace {

class TracingInstance : public ComponentInstance {
 public:
  TracingInstance(std::string type, net::NodeId node,
                  std::vector<std::string>& log)
      : ComponentInstance(std::move(type), node), log_(log) {}

 protected:
  void on_start() override { log_.push_back("start:" + type()); }
  void on_stop() override { log_.push_back("stop:" + type()); }

 private:
  std::vector<std::string>& log_;
};

DeploymentPlan plan_with(std::vector<Placement> placements) {
  DeploymentPlan plan;
  plan.placements = std::move(placements);
  return plan;
}

TEST(DeployerTest, BuiltinEncryptorFactoriesExist) {
  Deployer d;
  EXPECT_TRUE(d.has_factory(kEncryptorComponent));
  EXPECT_TRUE(d.has_factory(kDecryptorComponent));
  EXPECT_FALSE(d.has_factory("air.TravelAgent"));
}

TEST(DeployerTest, DeploysAndStartsInstances) {
  Deployer d;
  auto deployment = d.deploy(plan_with({{kEncryptorComponent, 1},
                                        {kDecryptorComponent, 2}}));
  ASSERT_EQ(deployment.size(), 2u);
  EXPECT_TRUE(deployment.instance(0).started());
  EXPECT_EQ(deployment.instance(0).type(), kEncryptorComponent);
  EXPECT_EQ(deployment.instance(0).node(), 1u);
  EXPECT_EQ(deployment.instances_of(kDecryptorComponent).size(), 1u);
}

TEST(DeployerTest, UnknownTypeThrows) {
  Deployer d;
  EXPECT_THROW((void)d.deploy(plan_with({{"no.SuchComponent", 0}})),
               std::runtime_error);
}

TEST(DeployerTest, CustomFactoriesUsedAndStoppedInReverseOrder) {
  Deployer d;
  std::vector<std::string> log;
  d.register_factory("a", [&](net::NodeId n) {
    return std::make_unique<TracingInstance>("a", n, log);
  });
  d.register_factory("b", [&](net::NodeId n) {
    return std::make_unique<TracingInstance>("b", n, log);
  });
  {
    auto deployment = d.deploy(plan_with({{"a", 0}, {"b", 1}}));
    EXPECT_EQ(log, (std::vector<std::string>{"start:a", "start:b"}));
  }
  EXPECT_EQ(log, (std::vector<std::string>{"start:a", "start:b", "stop:b",
                                           "stop:a"}));
}

TEST(DeployerTest, StartStopIdempotent) {
  std::vector<std::string> log;
  TracingInstance inst("x", 0, log);
  inst.start();
  inst.start();
  inst.stop();
  inst.stop();
  EXPECT_EQ(log, (std::vector<std::string>{"start:x", "stop:x"}));
}

TEST(DeployerTest, FactoryReplacementWins) {
  Deployer d;
  std::vector<std::string> log;
  d.register_factory(kEncryptorComponent, [&](net::NodeId n) {
    return std::make_unique<TracingInstance>("custom-enc", n, log);
  });
  auto deployment = d.deploy(plan_with({{kEncryptorComponent, 0}}));
  EXPECT_EQ(deployment.instance(0).type(), "custom-enc");
}

}  // namespace
}  // namespace flecc::psf
