#include "psf/planner.hpp"

#include <gtest/gtest.h>

namespace flecc::psf {
namespace {

/// A three-node chain: client -- gateway -- server, with configurable
/// security/latency on each hop (echoes the paper's Figure 1 domains).
struct ChainFixture : ::testing::Test {
  ChainFixture() {
    client = env.add_node("client", {{"domain", "A"}});
    gateway = env.add_node("gateway");
    server = env.add_node("server", {{"domain", "B"}});
    net::LinkSpec lan;
    lan.latency = sim::usec(100);
    lan.secure = true;
    l1 = env.connect(client, gateway, lan);
    net::LinkSpec wan;
    wan.latency = sim::msec(40);
    wan.secure = false;  // the Internet hop
    l2 = env.connect(gateway, server, wan);
  }

  Environment env;
  net::NodeId client = 0, gateway = 0, server = 0;
  net::LinkId l1 = 0, l2 = 0;
};

TEST_F(ChainFixture, DirectPlanWhenQoSAllows) {
  ServiceRequest req;
  req.client = client;
  req.origin = server;
  req.interface_name = "AirlineReservationInterface";
  const auto plan = Planner(env).plan(req);
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->placements.empty());
  EXPECT_FALSE(plan->uses_local_view);
  EXPECT_EQ(plan->path.size(), 2u);
  EXPECT_EQ(plan->expected_latency, sim::usec(100) + sim::msec(40));
}

TEST_F(ChainFixture, PrivacyWrapsInsecureLinksOnly) {
  ServiceRequest req;
  req.client = client;
  req.origin = server;
  req.privacy_required = true;
  const auto plan = Planner(env).plan(req);
  ASSERT_TRUE(plan.has_value());
  // Only the insecure WAN hop gets an encryptor/decryptor pair.
  ASSERT_EQ(plan->placements.size(), 2u);
  EXPECT_EQ(plan->placements[0].component, kEncryptorComponent);
  EXPECT_EQ(plan->placements[1].component, kDecryptorComponent);
  const auto [a, b] = env.topology().link_ends(l2);
  EXPECT_EQ(plan->placements[0].node, a);
  EXPECT_EQ(plan->placements[1].node, b);
}

TEST_F(ChainFixture, NoWrappingWhenEverythingSecure) {
  env.set_link_secure(l2, true);
  ServiceRequest req;
  req.client = client;
  req.origin = server;
  req.privacy_required = true;
  const auto plan = Planner(env).plan(req);
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->placements.empty());
}

TEST_F(ChainFixture, LatencyBudgetDeploysLocalView) {
  ServiceRequest req;
  req.client = client;
  req.origin = server;
  req.max_latency = sim::msec(1);  // the 40ms WAN hop busts this
  req.view_component = "air.TravelAgent";
  const auto plan = Planner(env).plan(req);
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->uses_local_view);
  EXPECT_EQ(plan->expected_latency, 0);
  ASSERT_EQ(plan->placements.size(), 1u);
  EXPECT_EQ(plan->placements[0].component, "air.TravelAgent");
  EXPECT_EQ(plan->placements[0].node, client);
}

TEST_F(ChainFixture, LatencyAndPrivacyCompose) {
  ServiceRequest req;
  req.client = client;
  req.origin = server;
  req.max_latency = sim::msec(1);
  req.privacy_required = true;
  req.view_component = "air.TravelAgent";
  const auto plan = Planner(env).plan(req);
  ASSERT_TRUE(plan.has_value());
  // Encryptor pair (for the view's synchronization traffic) + view.
  EXPECT_EQ(plan->placements.size(), 3u);
  EXPECT_TRUE(plan->uses_local_view);
}

TEST_F(ChainFixture, UnsatisfiableWhenViewsDisallowed) {
  ServiceRequest req;
  req.client = client;
  req.origin = server;
  req.max_latency = sim::msec(1);
  req.allow_local_view = false;
  EXPECT_FALSE(Planner(env).plan(req).has_value());
  // ... or when no view component is named.
  req.allow_local_view = true;
  req.view_component.clear();
  EXPECT_FALSE(Planner(env).plan(req).has_value());
}

TEST_F(ChainFixture, DisconnectedIsUnsatisfiable) {
  env.set_link_up(l1, false);
  ServiceRequest req;
  req.client = client;
  req.origin = server;
  EXPECT_FALSE(Planner(env).plan(req).has_value());
}

TEST_F(ChainFixture, PlanRendersReadably) {
  ServiceRequest req;
  req.client = client;
  req.origin = server;
  req.privacy_required = true;
  const auto plan = Planner(env).plan(req);
  ASSERT_TRUE(plan.has_value());
  const std::string text = plan->to_string(env);
  EXPECT_NE(text.find("client"), std::string::npos);
  EXPECT_NE(text.find(kEncryptorComponent), std::string::npos);
  EXPECT_NE(text.find("insecure"), std::string::npos);
}

}  // namespace
}  // namespace flecc::psf
